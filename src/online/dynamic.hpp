// Stepwise dynamic scheduling with irrevocable commits (DESIGN.md §14).
//
// The monolithic online schedulers (online_scheduler.hpp) consume a complete
// OnlineInstance: every release time is known up front, which is fine for
// competitive-ratio experiments but cannot model sustained traffic, where
// the scheduler learns of a job only when it arrives. DynamicEngine inverts
// the control flow: callers submit jobs as they arrive (release strictly in
// the future — the engine refuses hindsight) and drive time forward one
// step() at a time; each step commits one schedule block that is never
// revised. Irrevocability is structural: committed() exposes the Schedule
// by const reference and the engine only ever appends to it.
//
// The per-step decision rules are the SAME ones the monolithic schedulers
// apply — extracted verbatim — so feeding the engine a full instance up
// front reproduces schedule_online_greedy / schedule_online_reservation
// block-for-block (core::Schedule::append merges identical consecutive
// steps back into the monoliths' long blocks). The monoliths are now thin
// wrappers over this engine, keeping one copy of the policy logic.
//
// Accounting: the engine tracks per-job {release, start, completion} and
// per-step busy resource units. Flow time (completion − release + 1, the
// steps a request spends in the system) and utilization fall out exactly;
// the same facts are mirrored into the global obs registry as deterministic
// metrics (online.* — counters and a log-bucketed flow-time histogram), so
// bench_online_traffic's percentile gate can compare runs across thread
// counts bit-exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "core/job.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"

namespace sharedres::online {

/// Per-step commitment rule; see online_scheduler.hpp for the semantics.
enum class DynamicPolicy {
  kGreedy,       ///< sustain started jobs, top-up smallest-remaining-first
  kReservation,  ///< Garey–Graham full-reservation admission
};

/// Lifecycle facts of one submitted job, filled in as the engine runs.
struct DynamicJobStats {
  core::Time release = 0;     ///< step the job became available
  core::Time start = 0;       ///< first step with a positive share (0: none)
  core::Time completion = 0;  ///< step its last unit completed (0: unfinished)

  [[nodiscard]] bool finished() const { return completion != 0; }
  /// Steps in the system, release through completion inclusive. Only
  /// meaningful once finished().
  [[nodiscard]] core::Time flow_time() const {
    return completion - release + 1;
  }
};

class DynamicEngine {
 public:
  /// Throws std::invalid_argument unless machines >= 1 and capacity >= 1.
  DynamicEngine(int machines, core::Res capacity,
                DynamicPolicy policy = DynamicPolicy::kGreedy);

  /// Announce a job that becomes available at step `release`. Returns its
  /// JobId (assignment ids in committed() use submission order). Throws
  /// std::invalid_argument when release <= now() — the past is committed —
  /// or the job is malformed (size or requirement < 1).
  core::JobId submit(core::Time release, const core::Job& job);

  /// Advance one step: commit the block for step now()+1 (possibly empty —
  /// nothing released, or nothing submitted at all) and apply its progress.
  /// After the call, committed().makespan() == now().
  void step();

  /// step() until every submitted job is finished (no-op when idle()).
  /// Returns now(). The wrapper path for full-instance scheduling; a
  /// traffic simulation instead interleaves submit() and step().
  core::Time run_until_idle();

  /// Steps committed so far (the schedule's makespan).
  [[nodiscard]] core::Time now() const { return now_; }

  /// True when every submitted job has finished.
  [[nodiscard]] bool idle() const { return unfinished_ == 0; }

  /// The committed prefix — append-only, never revised.
  [[nodiscard]] const core::Schedule& committed() const { return schedule_; }

  /// Per-job lifecycle stats, indexed by JobId.
  [[nodiscard]] const std::vector<DynamicJobStats>& stats() const {
    return stats_;
  }

  [[nodiscard]] std::size_t submitted() const { return jobs_.size(); }
  [[nodiscard]] std::size_t completed() const {
    return jobs_.size() - unfinished_;
  }

  /// Total resource units granted over all committed steps.
  [[nodiscard]] core::Res busy_units() const { return busy_units_; }

  /// busy_units / (capacity · now): the fraction of the sharable resource
  /// the committed schedule actually used. 0 before the first step.
  [[nodiscard]] double utilization() const;

 private:
  struct JobState {
    core::Job job;
    core::Time release = 0;
    core::Res rem = 0;
    bool started = false;
  };

  void step_greedy(std::vector<core::Assignment>& out);
  void step_reservation(std::vector<core::Assignment>& out);
  void apply(core::JobId j, core::Res share,
             std::vector<core::Assignment>& out);

  std::size_t machines_;
  core::Res capacity_;
  DynamicPolicy policy_;
  core::Time now_ = 0;
  std::size_t unfinished_ = 0;
  core::Res busy_units_ = 0;
  std::vector<JobState> jobs_;
  std::vector<DynamicJobStats> stats_;
  core::Schedule schedule_;
  std::vector<core::Res> share_;  ///< per-step scratch (greedy)
};

}  // namespace sharedres::online
