// Online schedulers (extension; see online_model.hpp).
#pragma once

#include "core/schedule.hpp"
#include "online/online_model.hpp"

namespace sharedres::online {

/// Greedy resource sharing over released jobs: every step, started jobs are
/// sustained first (non-preemption), then the free resource goes to the
/// released jobs with the smallest remaining requirement — the online
/// analogue of the window's "finish many small jobs per step" principle.
/// At most m jobs run per step; a job is only started if it can either
/// finish this step or be sustained later (one unit per open job).
[[nodiscard]] core::Schedule schedule_online_greedy(
    const OnlineInstance& instance);

/// Full-reservation online baseline: a released job runs only when its
/// whole min(r_j, C) fits — Garey–Graham admission with arrivals.
[[nodiscard]] core::Schedule schedule_online_reservation(
    const OnlineInstance& instance);

}  // namespace sharedres::online
