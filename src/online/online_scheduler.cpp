#include "online/online_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/checked.hpp"

namespace sharedres::online {

namespace {

using core::Assignment;
using core::Res;
using core::Schedule;
using core::Time;

struct JobState {
  Res rem = 0;
  bool started = false;
};

bool all_done(const std::vector<JobState>& state) {
  for (const JobState& s : state) {
    if (s.rem > 0) return false;
  }
  return true;
}

}  // namespace

Schedule schedule_online_greedy(const OnlineInstance& instance) {
  instance.validate_input();
  const auto m = static_cast<std::size_t>(instance.machines);
  const Res capacity = instance.capacity;

  std::vector<JobState> state(instance.size());
  for (std::size_t j = 0; j < instance.size(); ++j) {
    state[j].rem = instance.jobs[j].job.total_requirement();
  }

  Schedule out;
  Time t = 0;
  while (!all_done(state)) {
    ++t;
    // Released, unfinished jobs; started ones are mandatory.
    std::vector<std::size_t> started, fresh;
    for (std::size_t j = 0; j < instance.size(); ++j) {
      if (state[j].rem == 0 || instance.jobs[j].release > t) continue;
      (state[j].started ? started : fresh).push_back(j);
    }
    if (started.empty() && fresh.empty()) {
      // Nothing released: idle (empty blocks) until the next release.
      Time next_release = std::numeric_limits<Time>::max();
      for (std::size_t j = 0; j < instance.size(); ++j) {
        if (state[j].rem > 0) {
          next_release = std::min(next_release, instance.jobs[j].release);
        }
      }
      out.append(next_release - t, {});
      t = next_release;
      for (std::size_t j = 0; j < instance.size(); ++j) {
        if (state[j].rem == 0 || instance.jobs[j].release > t) continue;
        fresh.push_back(j);  // nothing can be started while idle
      }
    }

    std::vector<Assignment> step;
    Res left = capacity;
    std::size_t machines_left = m;
    std::size_t in_flight = 0;

    // Sustain started jobs (one unit reserve each), smallest remaining
    // first for the top-ups.
    auto by_remaining = [&](std::size_t a, std::size_t b) {
      return state[a].rem != state[b].rem ? state[a].rem < state[b].rem
                                          : a < b;
    };
    std::sort(started.begin(), started.end(), by_remaining);
    std::sort(fresh.begin(), fresh.end(), by_remaining);

    std::vector<Res> share(instance.size(), 0);
    for (const std::size_t j : started) {
      if (machines_left == 0 || left == 0) {
        throw std::logic_error("online greedy cannot sustain started jobs");
      }
      share[j] = 1;
      --left;
      --machines_left;
    }
    auto top_up = [&](std::size_t j) {
      const Res cap = std::min(instance.jobs[j].job.requirement,
                               std::min(state[j].rem, capacity));
      const Res extra = std::min(cap - share[j], left);
      share[j] += extra;
      left -= extra;
    };
    for (const std::size_t j : started) top_up(j);
    bool any_progress = !started.empty();
    for (const std::size_t j : fresh) {
      if (machines_left == 0 || left == 0) break;
      const Res cap = std::min(instance.jobs[j].job.requirement,
                               std::min(state[j].rem, capacity));
      const Res grant = std::min(cap, left);
      if (grant == 0) continue;
      // Start only if it finishes now, or we can sustain it in later steps
      // (one unit per open job), or nothing else progressed yet.
      if (grant < state[j].rem && any_progress &&
          static_cast<Res>(in_flight + started.size()) + 1 >= capacity) {
        continue;
      }
      share[j] = grant;
      left -= grant;
      --machines_left;
      any_progress = true;
      if (grant < state[j].rem) ++in_flight;
    }

    for (const std::size_t j : started) {
      state[j].rem -= share[j];
      if (state[j].rem == 0) state[j].started = false;
      step.push_back(Assignment{j, share[j]});
    }
    for (const std::size_t j : fresh) {
      if (share[j] == 0) continue;
      state[j].rem -= share[j];
      state[j].started = state[j].rem > 0;
      step.push_back(Assignment{j, share[j]});
    }
    if (step.empty()) {
      throw std::logic_error("online greedy made no progress");
    }
    out.append(1, std::move(step));
  }
  return out;
}

Schedule schedule_online_reservation(const OnlineInstance& instance) {
  instance.validate_input();
  const auto m = static_cast<std::size_t>(instance.machines);
  const Res capacity = instance.capacity;

  std::vector<JobState> state(instance.size());
  for (std::size_t j = 0; j < instance.size(); ++j) {
    state[j].rem = instance.jobs[j].job.total_requirement();
  }

  Schedule out;
  Time t = 0;
  while (!all_done(state)) {
    ++t;
    std::vector<std::size_t> running, waiting;
    for (std::size_t j = 0; j < instance.size(); ++j) {
      if (state[j].rem == 0 || instance.jobs[j].release > t) continue;
      (state[j].started ? running : waiting).push_back(j);
    }
    if (running.empty() && waiting.empty()) {
      Time next_release = std::numeric_limits<Time>::max();
      for (std::size_t j = 0; j < instance.size(); ++j) {
        if (state[j].rem > 0) {
          next_release = std::min(next_release, instance.jobs[j].release);
        }
      }
      if (next_release > t) {
        out.append(next_release - t, {});
        t = next_release;
      }
      for (std::size_t j = 0; j < instance.size(); ++j) {
        if (state[j].rem == 0 || instance.jobs[j].release > t) continue;
        waiting.push_back(j);
      }
    }

    std::vector<Assignment> step;
    Res left = capacity;
    std::size_t machines_left = m;
    // Running jobs keep their full reservation.
    for (const std::size_t j : running) {
      const Res rate = std::min(instance.jobs[j].job.requirement, capacity);
      const Res grant = std::min(rate, state[j].rem);
      step.push_back(Assignment{j, grant});
      state[j].rem -= grant;
      if (state[j].rem == 0) state[j].started = false;
      left -= grant;
      --machines_left;
    }
    // Admit waiting jobs in release order while their reservation fits.
    for (const std::size_t j : waiting) {
      if (machines_left == 0) break;
      const Res rate = std::min(instance.jobs[j].job.requirement, capacity);
      if (rate > left) continue;
      const Res grant = std::min(rate, state[j].rem);
      step.push_back(Assignment{j, grant});
      state[j].rem -= grant;
      state[j].started = state[j].rem > 0;
      left -= grant;
      --machines_left;
    }
    if (step.empty()) {
      throw std::logic_error("online reservation made no progress");
    }
    out.append(1, std::move(step));
  }
  return out;
}

}  // namespace sharedres::online
