#include "online/online_scheduler.hpp"

#include "online/dynamic.hpp"

namespace sharedres::online {

// Both schedulers are thin wrappers over the stepwise DynamicEngine
// (dynamic.hpp): announce every job up front, run to completion. The engine
// applies the same per-step rules these functions used to hard-code, and
// Schedule::append merges its length-1 commits back into the long blocks the
// original monoliths emitted — the result is equal block-for-block
// (asserted by the wrapper-equality test in tests/test_online.cpp).

namespace {

core::Schedule run_policy(const OnlineInstance& instance,
                          DynamicPolicy policy) {
  instance.validate_input();
  DynamicEngine engine(instance.machines, instance.capacity, policy);
  for (const OnlineJob& oj : instance.jobs) engine.submit(oj.release, oj.job);
  engine.run_until_idle();
  return engine.committed();
}

}  // namespace

core::Schedule schedule_online_greedy(const OnlineInstance& instance) {
  return run_policy(instance, DynamicPolicy::kGreedy);
}

core::Schedule schedule_online_reservation(const OnlineInstance& instance) {
  return run_policy(instance, DynamicPolicy::kReservation);
}

}  // namespace sharedres::online
