// Online arrivals — an extension beyond the paper.
//
// The paper's motivation (big-data jobs competing for bandwidth) is
// naturally online: jobs arrive over time and the scheduler cannot see the
// future. This module adds release times to the SoS model and an online
// scheduler that shares the resource greedily among released jobs,
// non-preemptively. The offline sliding window run on the release-free
// instance serves as the clairvoyant yardstick, and release-aware lower
// bounds make the measured "competitive" ratios sound.
#pragma once

#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/job.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"

namespace sharedres::online {

struct OnlineJob {
  core::Time release = 1;  ///< first step the job may run (1-based)
  core::Job job;
};

struct OnlineInstance {
  int machines = 2;
  core::Res capacity = 1;
  std::vector<OnlineJob> jobs;

  void validate_input() const;
  [[nodiscard]] std::size_t size() const { return jobs.size(); }

  /// Forget the release times (the clairvoyant relaxation; its optimum
  /// lower-bounds nothing online, but the offline window schedule on it is
  /// the natural best-knowledge comparison point).
  [[nodiscard]] core::Instance clairvoyant() const;
};

struct OnlineValidation {
  bool ok = true;
  std::string error;

  explicit operator bool() const { return ok; }
};

/// Feasibility with releases: everything core::validate checks, plus no job
/// runs before its release step. `schedule` uses the instance's job order.
[[nodiscard]] OnlineValidation validate(const OnlineInstance& instance,
                                        const core::Schedule& schedule);

/// Release-aware makespan lower bound:
///   max{ ⌈Σ s_j / C⌉, ⌈Σ p_j / m⌉,
///        max_j (release_j − 1 + ⌈s_j / min(r_j, C)⌉) }.
[[nodiscard]] core::Time online_lower_bound(const OnlineInstance& instance);

}  // namespace sharedres::online
