#include "online/arrivals.hpp"

#include <cmath>
#include <stdexcept>

namespace sharedres::online {

namespace {

// Built-in diurnal profile: 24 slots of a stylized day — a quiet night, a
// morning ramp, a midday plateau, an evening peak, and a wind-down. Relative
// rates; normalized to mean 1 before use.
const std::vector<double>& default_diurnal_profile() {
  static const std::vector<double> kProfile = {
      0.2, 0.15, 0.1, 0.1, 0.15, 0.3,   // 00–05: night
      0.6, 1.0,  1.4, 1.6, 1.7,  1.8,   // 06–11: morning ramp
      1.6, 1.5,  1.5, 1.6, 1.7,  1.9,   // 12–17: plateau
      2.2, 2.0,  1.6, 1.2, 0.8,  0.45,  // 18–23: evening peak, wind-down
  };
  return kProfile;
}

void validate_config(const ArrivalConfig& config) {
  if (!(config.rate >= 0.0) || !std::isfinite(config.rate)) {
    throw std::invalid_argument("arrivals: rate must be finite and >= 0");
  }
  switch (config.kind) {
    case ArrivalKind::kPoisson:
      break;
    case ArrivalKind::kBursty:
      if (!(config.burst_factor >= 1.0) ||
          !std::isfinite(config.burst_factor)) {
        throw std::invalid_argument("arrivals: burst_factor must be >= 1");
      }
      if (!(config.p_enter_burst >= 0.0 && config.p_enter_burst <= 1.0) ||
          !(config.p_exit_burst >= 0.0 && config.p_exit_burst <= 1.0)) {
        throw std::invalid_argument(
            "arrivals: burst transition probabilities must be in [0, 1]");
      }
      break;
    case ArrivalKind::kDiurnal: {
      if (config.steps_per_slot <= 0) {
        throw std::invalid_argument("arrivals: steps_per_slot must be >= 1");
      }
      const std::vector<double>& profile =
          config.profile.empty() ? default_diurnal_profile() : config.profile;
      double sum = 0.0;
      for (const double r : profile) {
        if (!(r >= 0.0) || !std::isfinite(r)) {
          throw std::invalid_argument(
              "arrivals: profile rates must be finite and >= 0");
        }
        sum += r;
      }
      if (sum <= 0.0) {
        throw std::invalid_argument("arrivals: profile must not be all zero");
      }
      break;
    }
  }
}

// Knuth's product method: exact Poisson(λ) draws from uniform01() — portable
// (no std::poisson_distribution, which is implementation-defined) and fine
// for the per-step rates we use (λ well below ~500, so exp(-λ) does not
// underflow to a degenerate loop).
std::size_t poisson_draw(util::Rng& rng, double lambda) {
  if (lambda <= 0.0) return 0;
  const double limit = std::exp(-lambda);
  std::size_t k = 0;
  double product = 1.0;
  do {
    ++k;
    product *= rng.uniform01();
  } while (product > limit);
  return k - 1;
}

}  // namespace

ArrivalProcess::ArrivalProcess(const ArrivalConfig& config)
    : config_(config), rng_(config.seed) {
  validate_config(config_);
  switch (config_.kind) {
    case ArrivalKind::kPoisson:
      break;
    case ArrivalKind::kBursty: {
      // Scale the quiet rate so the stationary mean equals config.rate:
      // mean = quiet·(1−f) + quiet·factor·f with burst fraction
      // f = p_enter / (p_enter + p_exit) (f = 0 when both are 0: the chain
      // never leaves the quiet state it starts in).
      const double p_sum = config_.p_enter_burst + config_.p_exit_burst;
      const double f = p_sum > 0.0 ? config_.p_enter_burst / p_sum : 0.0;
      quiet_rate_ = config_.rate / (1.0 + f * (config_.burst_factor - 1.0));
      burst_rate_ = quiet_rate_ * config_.burst_factor;
      break;
    }
    case ArrivalKind::kDiurnal: {
      profile_ =
          config_.profile.empty() ? default_diurnal_profile() : config_.profile;
      double sum = 0.0;
      for (const double r : profile_) sum += r;
      const double mean = sum / static_cast<double>(profile_.size());
      for (double& r : profile_) r /= mean;
      break;
    }
  }
}

double ArrivalProcess::current_rate() const {
  switch (config_.kind) {
    case ArrivalKind::kPoisson:
      return config_.rate;
    case ArrivalKind::kBursty:
      return bursting_ ? burst_rate_ : quiet_rate_;
    case ArrivalKind::kDiurnal: {
      // Next step is step_ + 1 (1-based); slot index cycles the profile.
      const auto slot = static_cast<std::size_t>(
          (step_ / config_.steps_per_slot) %
          static_cast<core::Time>(profile_.size()));
      return config_.rate * profile_[slot];
    }
  }
  return 0.0;  // unreachable; keeps -Wreturn-type quiet
}

std::size_t ArrivalProcess::next_count() {
  const double rate = current_rate();
  ++step_;
  const std::size_t count = poisson_draw(rng_, rate);
  if (config_.kind == ArrivalKind::kBursty) {
    // Transition AFTER the draw so current_rate() always reports the rate
    // the next call will use.
    const double p =
        bursting_ ? config_.p_exit_burst : config_.p_enter_burst;
    if (rng_.bernoulli(p)) bursting_ = !bursting_;
  }
  return count;
}

std::vector<core::Time> arrival_times(const ArrivalConfig& config,
                                      std::size_t max_arrivals,
                                      core::Time horizon) {
  ArrivalProcess process(config);
  std::vector<core::Time> out;
  if (max_arrivals == 0 || config.rate <= 0.0) return out;
  out.reserve(max_arrivals);
  while (out.size() < max_arrivals) {
    if (horizon != 0 && process.step() >= horizon) break;
    const std::size_t count = process.next_count();
    const core::Time t = process.step();
    for (std::size_t i = 0; i < count && out.size() < max_arrivals; ++i) {
      out.push_back(t);
    }
  }
  return out;
}

ArrivalKind parse_arrival_kind(const std::string& name) {
  if (name == "poisson") return ArrivalKind::kPoisson;
  if (name == "bursty") return ArrivalKind::kBursty;
  if (name == "diurnal") return ArrivalKind::kDiurnal;
  throw std::invalid_argument("unknown arrival process: " + name);
}

const char* to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
    case ArrivalKind::kDiurnal:
      return "diurnal";
  }
  return "?";
}

}  // namespace sharedres::online
