// Stochastic arrival processes for the sustained-traffic simulation
// (DESIGN.md §14).
//
// The batch-vs-dynamic framing (Casanova–Stillwell–Vivien, PAPERS.md) needs
// request streams that look like real traffic, not like one offline batch:
// jobs trickle in (Poisson), slam in correlated bursts (Markov-modulated),
// or swell and ebb on a daily rhythm (diurnal profile playback). All three
// are modeled as a rate-modulated Poisson process on the discrete step grid:
// a per-step rate λ(t) decides how many arrivals land on step t, and the
// process differs only in how λ(t) evolves.
//
// Determinism contract: every sample is drawn through util::Rng (xoshiro +
// our own portable distributions), so a fixed ArrivalConfig yields a
// bit-identical arrival sequence on every run, thread count, and platform
// with identical floating-point libm behavior — the same promise the
// workload generators already make. Distinct seeds yield distinct streams
// (tested in tests/test_online.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/prng.hpp"

namespace sharedres::online {

enum class ArrivalKind {
  kPoisson,  ///< constant rate λ
  kBursty,   ///< 2-state Markov-modulated Poisson (quiet ↔ burst)
  kDiurnal,  ///< rate follows a repeating per-slot profile (trace playback)
};

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Mean arrivals per step. For kPoisson this is λ; for kBursty and
  /// kDiurnal the state/profile rates below are scaled so the long-run mean
  /// is (approximately) this value. Must be >= 0; 0 generates no arrivals.
  double rate = 1.0;
  std::uint64_t seed = 1;

  // --- kBursty (Markov-modulated, 2 states) ---
  /// Burst-state rate multiplier over the quiet state (> 1).
  double burst_factor = 8.0;
  /// Per-step probability of entering / leaving the burst state. The
  /// stationary burst fraction is p_enter / (p_enter + p_exit).
  double p_enter_burst = 0.05;
  double p_exit_burst = 0.25;

  // --- kDiurnal ---
  /// Steps spent on each profile slot before moving to the next.
  core::Time steps_per_slot = 16;
  /// Relative per-slot rates, played back cyclically ("the day"). Empty
  /// selects the built-in 24-slot day/night profile. Values must be >= 0
  /// and not all zero; they are normalized so the profile mean is 1.
  std::vector<double> profile;
};

/// One process instantiation: a stateful generator of the per-step arrival
/// counts. Pure in the config (see file comment).
class ArrivalProcess {
 public:
  explicit ArrivalProcess(const ArrivalConfig& config);

  /// Number of arrivals landing on the next step (the first call answers
  /// for step 1, the second for step 2, ...).
  [[nodiscard]] std::size_t next_count();

  /// The 1-based step the last next_count() call answered for (0 before the
  /// first call).
  [[nodiscard]] core::Time step() const { return step_; }

  /// The per-step rate the NEXT next_count() call will draw with — exposed
  /// for the mean-sanity tests; for kBursty this already reflects the
  /// current Markov state.
  [[nodiscard]] double current_rate() const;

 private:
  ArrivalConfig config_;
  util::Rng rng_;
  core::Time step_ = 0;
  bool bursting_ = false;
  double quiet_rate_ = 0.0;
  double burst_rate_ = 0.0;
  std::vector<double> profile_;  ///< normalized (mean 1) diurnal profile
};

/// The arrival steps (1-based, non-decreasing) of the first arrivals of the
/// process — at most `max_arrivals` of them, and none past `horizon` steps
/// (horizon = 0 means "no step bound"; with rate 0 or max_arrivals 0 the
/// result is empty, which is why a 0 horizon still terminates: the process
/// is scanned only while arrivals can still appear, capped at a proven
/// internal bound when the rate is degenerate). Throws std::invalid_argument
/// on malformed configs (negative rates/probabilities, empty effective
/// profile).
[[nodiscard]] std::vector<core::Time> arrival_times(
    const ArrivalConfig& config, std::size_t max_arrivals,
    core::Time horizon = 0);

/// Parse "poisson" | "bursty" | "diurnal" (the CLI/bench spelling). Throws
/// std::invalid_argument on anything else.
[[nodiscard]] ArrivalKind parse_arrival_kind(const std::string& name);
[[nodiscard]] const char* to_string(ArrivalKind kind);

}  // namespace sharedres::online
