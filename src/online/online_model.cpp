#include "online/online_model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/validator.hpp"
#include "util/checked.hpp"

namespace sharedres::online {

void OnlineInstance::validate_input() const {
  if (machines < 1) throw std::invalid_argument("OnlineInstance: machines < 1");
  if (capacity < 1) throw std::invalid_argument("OnlineInstance: capacity < 1");
  for (const OnlineJob& oj : jobs) {
    if (oj.release < 1) {
      throw std::invalid_argument("OnlineInstance: release < 1");
    }
    if (oj.job.size < 1 || oj.job.requirement < 1) {
      throw std::invalid_argument("OnlineInstance: malformed job");
    }
  }
}

core::Instance OnlineInstance::clairvoyant() const {
  std::vector<core::Job> plain;
  plain.reserve(jobs.size());
  for (const OnlineJob& oj : jobs) plain.push_back(oj.job);
  return core::Instance(machines, capacity, std::move(plain));
}

OnlineValidation validate(const OnlineInstance& instance,
                          const core::Schedule& schedule) {
  auto fail = [](const std::string& msg) {
    return OnlineValidation{false, msg};
  };
  instance.validate_input();

  // Core feasibility via the clairvoyant instance: its ctor sorts jobs, so
  // remap the schedule's (input-order) ids to sorted ids.
  const core::Instance flat = instance.clairvoyant();
  std::vector<core::JobId> to_sorted(flat.size());
  for (core::JobId sorted = 0; sorted < flat.size(); ++sorted) {
    to_sorted[flat.original_id(sorted)] = sorted;
  }
  core::Schedule remapped;
  for (const core::Block& block : schedule.blocks()) {
    std::vector<core::Assignment> step;
    step.reserve(block.assignments.size());
    for (const core::Assignment& a : block.assignments) {
      if (a.job >= instance.size()) return fail("invalid job id");
      step.push_back(core::Assignment{to_sorted[a.job], a.share});
    }
    remapped.append(block.length, std::move(step));
  }
  if (const auto core_check = core::validate(flat, remapped); !core_check.ok) {
    return fail("core feasibility: " + core_check.error);
  }

  // Releases respected: first step of job j is ≥ release_j.
  std::vector<core::Time> first(instance.size(), 0);
  core::Time t = 1;
  for (const core::Block& block : schedule.blocks()) {
    for (const core::Assignment& a : block.assignments) {
      if (first[a.job] == 0) first[a.job] = t;
    }
    t += block.length;
  }
  for (std::size_t j = 0; j < instance.size(); ++j) {
    if (first[j] != 0 && first[j] < instance.jobs[j].release) {
      std::ostringstream os;
      os << "job " << j << " starts at " << first[j] << " before release "
         << instance.jobs[j].release;
      return fail(os.str());
    }
  }
  return {};
}

core::Time online_lower_bound(const OnlineInstance& instance) {
  instance.validate_input();
  core::Res total = 0;
  core::Res volume = 0;
  core::Time per_job = 0;
  for (const OnlineJob& oj : instance.jobs) {
    const core::Res s = oj.job.total_requirement();
    total = util::add_checked(total, s);
    volume = util::add_checked(volume, oj.job.size);
    const core::Res intake = std::min(oj.job.requirement, instance.capacity);
    per_job = std::max(per_job,
                       oj.release - 1 + util::ceil_div(s, intake));
  }
  return std::max({util::ceil_div(total, instance.capacity),
                   util::ceil_div(volume, static_cast<core::Res>(
                                              instance.machines)),
                   per_job});
}

}  // namespace sharedres::online
