// Plain-text serialization for instances, schedules, task sets and packing
// problems.
//
// The format is line-based, versioned and diff-friendly:
//
//   # sharedres instance v1        # sharedres sas v1
//   machines 4                     machines 8
//   capacity 100                   capacity 1000
//   jobs 2                         tasks 2
//   job 3 40                       task 5 10 20
//   job 1 25                       task 7 7
//
//   # sharedres packing v1         # sharedres schedule v1
//   capacity 100                   blocks 2
//   cardinality 4                  block 3 2 0:40 1:25
//   items 2                        block 1 1 1:10
//   item 30
//   item 170
//
// `job p r` lists size then requirement; `task r1 r2 ...` lists the unit
// jobs' requirements; `block len k  job:share ...` lists len identical
// steps. Blank lines and lines starting with '#' are ignored (except the
// mandatory header). Readers throw util::Error (code kParse) carrying the
// 1-based line and column of the offending token; file wrappers throw
// util::Error (code kIo) when a path cannot be opened.
//
// d-resource instances (d > 1) use `# sharedres instance v2`:
//
//   # sharedres instance v2
//   machines 4
//   resources 2
//   capacity 100 60
//   jobs 2
//   job 3 40 12
//   job 1 25 5
//
// `capacity` lists all d capacities; `job p r0 r1 ...` lists the size then
// one requirement per resource. write_instance emits v1 byte-identically
// for single-resource instances and v2 otherwise; read_instance accepts
// both versions. All other kinds remain v1-only.
#pragma once

#include <iosfwd>
#include <string>

#include "binpack/packing.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "online/online_model.hpp"
#include "sas/task.hpp"

namespace sharedres::io {

void write_instance(std::ostream& os, const core::Instance& instance);
[[nodiscard]] core::Instance read_instance(std::istream& is);

void write_schedule(std::ostream& os, const core::Schedule& schedule);
[[nodiscard]] core::Schedule read_schedule(std::istream& is);

void write_sas(std::ostream& os, const sas::SasInstance& instance);
[[nodiscard]] sas::SasInstance read_sas(std::istream& is);

void write_packing_instance(std::ostream& os,
                            const binpack::PackingInstance& instance);
[[nodiscard]] binpack::PackingInstance read_packing_instance(std::istream& is);

/// Packing results: `# sharedres packs v1`, `bins N`, then per bin
/// `bin <k> item:amount ...`.
void write_packing(std::ostream& os, const binpack::Packing& packing);
[[nodiscard]] binpack::Packing read_packing(std::istream& is);

/// Online instances: `# sharedres online v1`, machines/capacity/jobs, then
/// per job `job <release> <size> <requirement>`.
void write_online(std::ostream& os, const online::OnlineInstance& instance);
[[nodiscard]] online::OnlineInstance read_online(std::istream& is);

// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_instance(const std::string& path, const core::Instance& instance);
[[nodiscard]] core::Instance load_instance(const std::string& path);
void save_schedule(const std::string& path, const core::Schedule& schedule);
[[nodiscard]] core::Schedule load_schedule(const std::string& path);

}  // namespace sharedres::io
