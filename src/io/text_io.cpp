#include "io/text_io.hpp"

#include <cctype>
#include <fstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/registry.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace sharedres::io {

namespace {

/// A whitespace-delimited token plus its 1-based column in the source line.
struct Token {
  std::string text;
  int column = 0;
};

/// Line-oriented tokenizer with position-aware (line, column) errors.
class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}

  /// Next non-blank, non-comment line split into tokens; empty at EOF.
  std::vector<Token> next_line() {
    SHAREDRES_FAILPOINT("io.next_line");
    std::string line;
    while (std::getline(is_, line)) {
      ++line_no_;
      SHAREDRES_OBS_COUNT("io.lines_read");
      SHAREDRES_OBS_COUNT_N("io.bytes_read", line.size() + 1);
      std::vector<Token> tokens;
      std::size_t i = 0;
      while (i < line.size()) {
        while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
        const std::size_t start = i;
        while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
        if (i > start) {
          tokens.push_back(
              {line.substr(start, i - start), static_cast<int>(start) + 1});
        }
      }
      if (tokens.empty() || tokens[0].text[0] == '#') continue;
      return tokens;
    }
    return {};
  }

  [[noreturn]] void fail(const std::string& msg) const { fail_at(0, msg); }

  [[noreturn]] void fail_at(int column, const std::string& msg) const {
    SHAREDRES_OBS_COUNT("io.parse_errors");
    throw util::Error::parse(line_no_, column, msg);
  }

  util::i64 to_int(const Token& tok) const {
    return to_int_at(tok.text, tok.column);
  }

  /// Parse a full integer token; `column` points at its first character.
  util::i64 to_int_at(const std::string& text, int column) const {
    try {
      std::size_t pos = 0;
      const util::i64 value = std::stoll(text, &pos);
      if (pos != text.size()) {
        fail_at(column, "trailing characters in number '" + text + "'");
      }
      return value;
    } catch (const std::out_of_range&) {
      fail_at(column, "number out of 64-bit range: '" + text + "'");
    } catch (const std::invalid_argument&) {
      fail_at(column, "expected a number, got '" + text + "'");
    }
  }

  /// Expect `key <value>` and return the value.
  util::i64 expect_kv(const std::string& key) {
    const auto tokens = next_line();
    if (tokens.size() != 2 || tokens[0].text != key) {
      fail("expected '" + key + " <value>'");
    }
    return to_int(tokens[1]);
  }

  void expect_header(const std::string& kind) {
    (void)expect_header_version(kind, 1);
  }

  /// As expect_header, but accepts any version 1..max_version and returns
  /// it (the instance format grew a v2 for d-resource instances; every
  /// other kind is still v1-only and keeps its historical error text).
  int expect_header_version(const std::string& kind, int max_version) {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_no_;
      SHAREDRES_OBS_COUNT("io.lines_read");
      SHAREDRES_OBS_COUNT_N("io.bytes_read", line.size() + 1);
      if (line.empty()) continue;
      const std::string prefix = "# sharedres " + kind + " v";
      for (int v = 1; v <= max_version; ++v) {
        if (line == prefix + std::to_string(v)) return v;
      }
      fail(max_version == 1
               ? "expected header '" + prefix + "1'"
               : "expected header '" + prefix + "1'..'" + prefix +
                     std::to_string(max_version) + "'");
    }
    fail("missing header");
  }

 private:
  std::istream& is_;
  int line_no_ = 0;
};

}  // namespace

void write_instance(std::ostream& os, const core::Instance& instance) {
  SHAREDRES_OBS_COUNT("io.instances_written");
  const std::size_t d = instance.resource_count();
  if (d == 1) {
    // Single-resource instances keep the historical v1 bytes exactly.
    os << "# sharedres instance v1\n";
    os << "machines " << instance.machines() << "\n";
    os << "capacity " << instance.capacity() << "\n";
    os << "jobs " << instance.size() << "\n";
    for (const core::Job& job : instance.jobs()) {
      os << "job " << job.size << " " << job.requirement << "\n";
    }
    return;
  }
  os << "# sharedres instance v2\n";
  os << "machines " << instance.machines() << "\n";
  os << "resources " << d << "\n";
  os << "capacity";
  for (std::size_t k = 0; k < d; ++k) os << " " << instance.capacity(k);
  os << "\n";
  os << "jobs " << instance.size() << "\n";
  for (std::size_t j = 0; j < instance.size(); ++j) {
    os << "job " << instance.job(j).size;
    for (std::size_t k = 0; k < d; ++k) os << " " << instance.requirement(j, k);
    os << "\n";
  }
}

core::Instance read_instance(std::istream& is) {
  Reader r(is);
  const int version = r.expect_header_version("instance", 2);
  const auto machines = static_cast<int>(r.expect_kv("machines"));
  if (version == 1) {
    const core::Res capacity = r.expect_kv("capacity");
    const util::i64 n = r.expect_kv("jobs");
    std::vector<core::Job> jobs;
    jobs.reserve(static_cast<std::size_t>(n));
    for (util::i64 i = 0; i < n; ++i) {
      const auto tokens = r.next_line();
      if (tokens.size() != 3 || tokens[0].text != "job") {
        r.fail("expected 'job <size> <requirement>'");
      }
      jobs.push_back(core::Job{r.to_int(tokens[1]), r.to_int(tokens[2])});
    }
    SHAREDRES_OBS_COUNT("io.instances_read");
    SHAREDRES_OBS_OBSERVE("io.instance_jobs",
                          ({1, 10, 100, 1000, 10000, 100000}), n);
    return core::Instance(machines, capacity, std::move(jobs));
  }
  const util::i64 resources = r.expect_kv("resources");
  if (resources < 1 ||
      resources > static_cast<util::i64>(core::kMaxResources)) {
    r.fail("resources must be in [1, " +
           std::to_string(core::kMaxResources) + "]");
  }
  const auto d = static_cast<std::size_t>(resources);
  const auto cap_tokens = r.next_line();
  if (cap_tokens.size() != 1 + d || cap_tokens[0].text != "capacity") {
    r.fail("expected 'capacity <c0> ... <c" + std::to_string(d - 1) + ">'");
  }
  std::vector<core::Res> capacities(d);
  for (std::size_t k = 0; k < d; ++k) {
    capacities[k] = r.to_int(cap_tokens[1 + k]);
  }
  const util::i64 n = r.expect_kv("jobs");
  std::vector<core::MultiJob> jobs;
  jobs.reserve(static_cast<std::size_t>(n));
  for (util::i64 i = 0; i < n; ++i) {
    const auto tokens = r.next_line();
    if (tokens.size() != 2 + d || tokens[0].text != "job") {
      r.fail("expected 'job <size> <r0> ... <r" + std::to_string(d - 1) +
             ">'");
    }
    core::MultiJob job;
    job.size = r.to_int(tokens[1]);
    job.requirements.resize(d);
    for (std::size_t k = 0; k < d; ++k) {
      job.requirements[k] = r.to_int(tokens[2 + k]);
    }
    jobs.push_back(std::move(job));
  }
  SHAREDRES_OBS_COUNT("io.instances_read");
  SHAREDRES_OBS_OBSERVE("io.instance_jobs", ({1, 10, 100, 1000, 10000, 100000}),
                        n);
  return core::Instance(machines, std::move(capacities), std::move(jobs));
}

void write_schedule(std::ostream& os, const core::Schedule& schedule) {
  SHAREDRES_OBS_COUNT("io.schedules_written");
  os << "# sharedres schedule v1\n";
  os << "blocks " << schedule.blocks().size() << "\n";
  for (const core::Block& block : schedule.blocks()) {
    os << "block " << block.length << " " << block.assignments.size();
    for (const core::Assignment& a : block.assignments) {
      os << " " << a.job << ":" << a.share;
    }
    os << "\n";
  }
}

core::Schedule read_schedule(std::istream& is) {
  Reader r(is);
  r.expect_header("schedule");
  const util::i64 blocks = r.expect_kv("blocks");
  core::Schedule schedule;
  for (util::i64 b = 0; b < blocks; ++b) {
    const auto tokens = r.next_line();
    if (tokens.size() < 3 || tokens[0].text != "block") {
      r.fail("expected 'block <len> <k> job:share ...'");
    }
    const core::Time len = r.to_int(tokens[1]);
    const util::i64 k = r.to_int(tokens[2]);
    if (static_cast<util::i64>(tokens.size()) != 3 + k) {
      r.fail("block advertises " + std::to_string(k) + " assignments, has " +
             std::to_string(tokens.size() - 3));
    }
    std::vector<core::Assignment> assignments;
    assignments.reserve(static_cast<std::size_t>(k));
    for (std::size_t t = 3; t < tokens.size(); ++t) {
      const auto colon = tokens[t].text.find(':');
      if (colon == std::string::npos) {
        r.fail_at(tokens[t].column, "expected 'job:share'");
      }
      assignments.push_back(core::Assignment{
          static_cast<core::JobId>(r.to_int_at(tokens[t].text.substr(0, colon),
                                               tokens[t].column)),
          r.to_int_at(tokens[t].text.substr(colon + 1),
                      tokens[t].column + static_cast<int>(colon) + 1)});
    }
    schedule.append(len, std::move(assignments));
  }
  SHAREDRES_OBS_COUNT("io.schedules_read");
  return schedule;
}

void write_sas(std::ostream& os, const sas::SasInstance& instance) {
  os << "# sharedres sas v1\n";
  os << "machines " << instance.machines << "\n";
  os << "capacity " << instance.capacity << "\n";
  os << "tasks " << instance.tasks.size() << "\n";
  for (const sas::Task& task : instance.tasks) {
    os << "task";
    for (const core::Res req : task.requirements) os << " " << req;
    os << "\n";
  }
}

sas::SasInstance read_sas(std::istream& is) {
  Reader r(is);
  r.expect_header("sas");
  sas::SasInstance instance;
  instance.machines = static_cast<int>(r.expect_kv("machines"));
  instance.capacity = r.expect_kv("capacity");
  const util::i64 k = r.expect_kv("tasks");
  for (util::i64 i = 0; i < k; ++i) {
    const auto tokens = r.next_line();
    if (tokens.size() < 2 || tokens[0].text != "task") {
      r.fail("expected 'task <r1> <r2> ...'");
    }
    sas::Task task;
    for (std::size_t t = 1; t < tokens.size(); ++t) {
      task.requirements.push_back(r.to_int(tokens[t]));
    }
    instance.tasks.push_back(std::move(task));
  }
  instance.validate_input();
  return instance;
}

void write_packing_instance(std::ostream& os,
                            const binpack::PackingInstance& instance) {
  os << "# sharedres packing v1\n";
  os << "capacity " << instance.capacity << "\n";
  os << "cardinality " << instance.cardinality << "\n";
  os << "items " << instance.items.size() << "\n";
  for (const core::Res item : instance.items) os << "item " << item << "\n";
}

binpack::PackingInstance read_packing_instance(std::istream& is) {
  Reader r(is);
  r.expect_header("packing");
  binpack::PackingInstance instance;
  instance.capacity = r.expect_kv("capacity");
  instance.cardinality = static_cast<int>(r.expect_kv("cardinality"));
  const util::i64 n = r.expect_kv("items");
  for (util::i64 i = 0; i < n; ++i) {
    const auto tokens = r.next_line();
    if (tokens.size() != 2 || tokens[0].text != "item") {
      r.fail("expected 'item <w>'");
    }
    instance.items.push_back(r.to_int(tokens[1]));
  }
  instance.validate_input();
  return instance;
}

void write_packing(std::ostream& os, const binpack::Packing& packing) {
  os << "# sharedres packs v1\n";
  os << "bins " << packing.bins.size() << "\n";
  for (const auto& bin : packing.bins) {
    os << "bin " << bin.size();
    for (const binpack::ItemPart& part : bin) {
      os << " " << part.item << ":" << part.amount;
    }
    os << "\n";
  }
}

binpack::Packing read_packing(std::istream& is) {
  Reader r(is);
  r.expect_header("packs");
  const util::i64 bins = r.expect_kv("bins");
  binpack::Packing packing;
  packing.bins.reserve(static_cast<std::size_t>(bins));
  for (util::i64 b = 0; b < bins; ++b) {
    const auto tokens = r.next_line();
    if (tokens.size() < 2 || tokens[0].text != "bin") {
      r.fail("expected 'bin <k> item:amount ...'");
    }
    const util::i64 k = r.to_int(tokens[1]);
    if (static_cast<util::i64>(tokens.size()) != 2 + k) {
      r.fail("bin advertises " + std::to_string(k) + " parts");
    }
    std::vector<binpack::ItemPart> bin;
    bin.reserve(static_cast<std::size_t>(k));
    for (std::size_t t = 2; t < tokens.size(); ++t) {
      const auto colon = tokens[t].text.find(':');
      if (colon == std::string::npos) {
        r.fail_at(tokens[t].column, "expected 'item:amount'");
      }
      bin.push_back(binpack::ItemPart{
          static_cast<std::size_t>(r.to_int_at(
              tokens[t].text.substr(0, colon), tokens[t].column)),
          r.to_int_at(tokens[t].text.substr(colon + 1),
                      tokens[t].column + static_cast<int>(colon) + 1)});
    }
    packing.bins.push_back(std::move(bin));
  }
  return packing;
}

void write_online(std::ostream& os, const online::OnlineInstance& instance) {
  os << "# sharedres online v1\n";
  os << "machines " << instance.machines << "\n";
  os << "capacity " << instance.capacity << "\n";
  os << "jobs " << instance.jobs.size() << "\n";
  for (const online::OnlineJob& oj : instance.jobs) {
    os << "job " << oj.release << " " << oj.job.size << " "
       << oj.job.requirement << "\n";
  }
}

online::OnlineInstance read_online(std::istream& is) {
  Reader r(is);
  r.expect_header("online");
  online::OnlineInstance instance;
  instance.machines = static_cast<int>(r.expect_kv("machines"));
  instance.capacity = r.expect_kv("capacity");
  const util::i64 n = r.expect_kv("jobs");
  for (util::i64 i = 0; i < n; ++i) {
    const auto tokens = r.next_line();
    if (tokens.size() != 4 || tokens[0].text != "job") {
      r.fail("expected 'job <release> <size> <requirement>'");
    }
    instance.jobs.push_back(online::OnlineJob{
        r.to_int(tokens[1]),
        core::Job{r.to_int(tokens[2]), r.to_int(tokens[3])}});
  }
  instance.validate_input();
  return instance;
}

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    SHAREDRES_OBS_COUNT("io.open_errors");
    throw util::Error::io("cannot open for writing: " + path);
  }
  return os;
}

std::ifstream open_in(const std::string& path) {
  SHAREDRES_FAILPOINT("io.open_in");
  std::ifstream is(path);
  if (!is) {
    SHAREDRES_OBS_COUNT("io.open_errors");
    throw util::Error::io("cannot open for reading: " + path);
  }
  return is;
}

}  // namespace

void save_instance(const std::string& path, const core::Instance& instance) {
  auto os = open_out(path);
  write_instance(os, instance);
}

core::Instance load_instance(const std::string& path) {
  auto is = open_in(path);
  return read_instance(is);
}

void save_schedule(const std::string& path, const core::Schedule& schedule) {
  auto os = open_out(path);
  write_schedule(os, schedule);
}

core::Schedule load_schedule(const std::string& path) {
  auto is = open_in(path);
  return read_schedule(is);
}

}  // namespace sharedres::io
