#include "workloads/sas_generators.hpp"

#include <algorithm>
#include <cmath>

namespace sharedres::workloads {

namespace {

using core::Res;
using sas::SasInstance;
using sas::Task;

Res frac_units(double frac, Res capacity) {
  const double units = frac * static_cast<double>(capacity);
  return std::max<Res>(1, static_cast<Res>(std::llround(
                              std::min(units, 9.0e17))));
}

/// A task whose jobs all have requirements around `frac` of capacity.
Task make_task(util::Rng& rng, std::size_t jobs, double frac, Res capacity) {
  Task task;
  task.requirements.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    task.requirements.push_back(
        frac_units(frac * rng.uniform_real(0.6, 1.4), capacity));
  }
  return task;
}

std::size_t draw_jobs(util::Rng& rng, const SasConfig& cfg) {
  return static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(std::max<std::size_t>(1, cfg.min_jobs)),
                      static_cast<std::int64_t>(std::max(cfg.min_jobs, cfg.max_jobs))));
}

}  // namespace

SasInstance mixed_task_set(const SasConfig& cfg, double p_heavy) {
  util::Rng rng(cfg.seed);
  SasInstance inst;
  inst.machines = cfg.machines;
  inst.capacity = cfg.capacity;
  const double heavy_frac = 0.35;  // well above 1/(m−1) for any tested m
  const double light_frac = 0.25 / static_cast<double>(cfg.machines);
  for (std::size_t i = 0; i < cfg.tasks; ++i) {
    const std::size_t jobs = draw_jobs(rng, cfg);
    const double frac = rng.bernoulli(p_heavy) ? heavy_frac : light_frac;
    inst.tasks.push_back(make_task(rng, jobs, frac, cfg.capacity));
  }
  return inst;
}

SasInstance heavy_task_set(const SasConfig& cfg) {
  util::Rng rng(cfg.seed);
  SasInstance inst;
  inst.machines = cfg.machines;
  inst.capacity = cfg.capacity;
  for (std::size_t i = 0; i < cfg.tasks; ++i) {
    inst.tasks.push_back(
        make_task(rng, draw_jobs(rng, cfg), 0.4, cfg.capacity));
  }
  return inst;
}

SasInstance light_task_set(const SasConfig& cfg) {
  util::Rng rng(cfg.seed);
  SasInstance inst;
  inst.machines = cfg.machines;
  inst.capacity = cfg.capacity;
  const double light_frac = 0.2 / static_cast<double>(cfg.machines);
  for (std::size_t i = 0; i < cfg.tasks; ++i) {
    inst.tasks.push_back(
        make_task(rng, draw_jobs(rng, cfg), light_frac, cfg.capacity));
  }
  return inst;
}

}  // namespace sharedres::workloads
