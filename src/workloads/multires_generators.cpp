#include "workloads/multires_generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace sharedres::workloads {

namespace {

using core::Instance;
using core::MultiJob;
using core::Res;

Res clamp_units(double frac, Res capacity) {
  const double units = frac * static_cast<double>(capacity);
  const double clamped = std::min(std::max(units, 1.0), 9.0e17);
  return std::clamp<Res>(static_cast<Res>(std::llround(clamped)), 1, capacity);
}

Res draw_size(util::Rng& rng, const MultiResConfig& cfg) {
  return cfg.max_size <= 1 ? 1 : rng.uniform_int(1, cfg.max_size);
}

void check_config(const MultiResConfig& cfg) {
  if (cfg.resources < 1 || cfg.resources > core::kMaxResources) {
    throw std::invalid_argument("multires generator: resources must be in [1, " +
                                std::to_string(core::kMaxResources) + "]");
  }
}

Instance build(const MultiResConfig& cfg, std::vector<MultiJob> jobs) {
  std::vector<Res> capacities(cfg.resources, cfg.capacity);
  return Instance(cfg.machines, std::move(capacities), std::move(jobs));
}

}  // namespace

Instance correlated_multires_instance(const MultiResConfig& cfg,
                                      double lo_frac, double hi_frac) {
  check_config(cfg);
  util::Rng rng(cfg.seed);
  std::vector<MultiJob> jobs(cfg.jobs);
  for (MultiJob& job : jobs) {
    job.size = draw_size(rng, cfg);
    const double base = rng.uniform_real(lo_frac, hi_frac);
    job.requirements.resize(cfg.resources);
    job.requirements[0] = clamp_units(base, cfg.capacity);
    for (std::size_t k = 1; k < cfg.resources; ++k) {
      job.requirements[k] =
          clamp_units(base * rng.uniform_real(0.75, 1.25), cfg.capacity);
    }
  }
  return build(cfg, std::move(jobs));
}

Instance anticorrelated_multires_instance(const MultiResConfig& cfg,
                                          double heavy_frac,
                                          double light_frac) {
  check_config(cfg);
  util::Rng rng(cfg.seed);
  std::vector<MultiJob> jobs(cfg.jobs);
  for (MultiJob& job : jobs) {
    job.size = draw_size(rng, cfg);
    job.requirements.resize(cfg.resources);
    // One randomly chosen heavy axis per job; the rest stay light. With
    // d = 2 this is the classic CPU-bound/IO-bound dichotomy.
    const auto heavy_axis = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(cfg.resources) - 1));
    for (std::size_t k = 0; k < cfg.resources; ++k) {
      const double base = (k == heavy_axis) ? heavy_frac : light_frac;
      job.requirements[k] =
          clamp_units(base * rng.uniform_real(0.8, 1.2), cfg.capacity);
    }
  }
  return build(cfg, std::move(jobs));
}

Instance vmpack_multires_instance(const MultiResConfig& cfg) {
  check_config(cfg);
  util::Rng rng(cfg.seed);
  // Flavour footprints as capacity fractions, axis k cycling through the
  // row (so every axis sees every footprint class at d ≤ 4).
  struct Flavour {
    double fracs[4];
    double weight;
  };
  static constexpr Flavour kFlavours[] = {
      {{0.05, 0.05, 0.05, 0.05}, 0.50},  // small: balanced
      {{0.15, 0.10, 0.05, 0.10}, 0.30},  // medium: mildly skewed
      {{0.40, 0.25, 0.15, 0.20}, 0.15},  // large: heavy everywhere
      {{0.10, 0.45, 0.05, 0.30}, 0.05},  // burst: secondary-axis heavy
  };
  std::vector<MultiJob> jobs(cfg.jobs);
  for (MultiJob& job : jobs) {
    job.size = draw_size(rng, cfg);
    const double pick = rng.uniform01();
    double acc = 0.0;
    const Flavour* flavour = &kFlavours[0];
    for (const Flavour& f : kFlavours) {
      acc += f.weight;
      if (pick < acc) {
        flavour = &f;
        break;
      }
    }
    job.requirements.resize(cfg.resources);
    for (std::size_t k = 0; k < cfg.resources; ++k) {
      const double base = flavour->fracs[k % 4];
      job.requirements[k] =
          clamp_units(base * rng.uniform_real(0.9, 1.1), cfg.capacity);
    }
  }
  return build(cfg, std::move(jobs));
}

Instance make_multires_instance(const std::string& family,
                                const MultiResConfig& cfg) {
  if (family == "correlated") return correlated_multires_instance(cfg);
  if (family == "anticorrelated") return anticorrelated_multires_instance(cfg);
  if (family == "vmpack") return vmpack_multires_instance(cfg);
  throw std::invalid_argument("unknown multires family: " + family);
}

const std::vector<std::string>& multires_families() {
  static const std::vector<std::string> kFamilies = {
      "correlated", "anticorrelated", "vmpack"};
  return kFamilies;
}

}  // namespace sharedres::workloads
