#include "workloads/traffic.hpp"

#include <stdexcept>
#include <utility>

#include "core/instance.hpp"
#include "util/json.hpp"

namespace sharedres::workloads {

namespace {

std::vector<core::Time> require_arrivals(const online::ArrivalConfig& arrivals,
                                         std::size_t count) {
  std::vector<core::Time> times = online::arrival_times(arrivals, count);
  if (times.size() < count) {
    throw std::invalid_argument(
        "traffic: arrival process yields only " +
        std::to_string(times.size()) + " of " + std::to_string(count) +
        " arrivals (zero rate or horizon too short)");
  }
  return times;
}

/// splitmix64 finalizer — decorrelates per-request seeds derived from
/// (stream seed, request index) without burning a full Rng stream each.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t k) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (k + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

online::OnlineInstance traffic_instance(const std::string& family,
                                        const SosConfig& cfg,
                                        const online::ArrivalConfig& arrivals) {
  const core::Instance base = make_instance(family, cfg);
  const std::vector<core::Time> times = require_arrivals(arrivals, base.size());

  // Same trick as online_arrivals: a separate stream shuffles the arrival
  // order so job shapes match the offline family exactly while arrival rank
  // stays independent of the requirement sort.
  util::Rng rng(cfg.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<core::JobId> order(base.size());
  for (core::JobId j = 0; j < base.size(); ++j) order[j] = j;
  rng.shuffle(order);

  online::OnlineInstance out;
  out.machines = cfg.machines;
  out.capacity = cfg.capacity;
  out.jobs.reserve(base.size());
  for (std::size_t k = 0; k < base.size(); ++k) {
    out.jobs.push_back(online::OnlineJob{times[k], base.job(order[k])});
  }
  return out;
}

std::vector<std::string> traffic_stream(const TrafficStreamConfig& cfg) {
  const std::vector<core::Time> times =
      require_arrivals(cfg.arrivals, cfg.requests);
  std::vector<std::string> lines;
  lines.reserve(cfg.requests);
  for (std::size_t k = 0; k < cfg.requests; ++k) {
    SosConfig per_request = cfg.sos;
    per_request.seed = mix_seed(cfg.sos.seed, k);
    const core::Instance instance = make_instance(cfg.family, per_request);

    // format_instance_record's shape plus the "arrival" timestamp; jobs in
    // the generator's original order (undo the instance sort).
    std::vector<core::Job> original(instance.size());
    for (core::JobId j = 0; j < instance.size(); ++j) {
      original[instance.original_id(j)] = instance.job(j);
    }
    util::Json jobs{util::Json::Array{}};
    for (const core::Job& job : original) {
      util::Json pair{util::Json::Array{}};
      pair.push_back(job.size);
      pair.push_back(job.requirement);
      jobs.push_back(std::move(pair));
    }
    util::Json doc{util::Json::Object{}};
    doc.emplace("id", cfg.id_prefix + "-" + std::to_string(k));
    doc.emplace("arrival", times[k]);
    doc.emplace("machines", instance.machines());
    doc.emplace("capacity", instance.capacity());
    if (cfg.deadline_steps != 0) {
      doc.emplace("deadline_steps", cfg.deadline_steps);
    }
    doc.emplace("jobs", std::move(jobs));
    lines.push_back(doc.dump());
  }
  return lines;
}

}  // namespace sharedres::workloads
