// Synthetic SoS instance generators (experiment substrate).
//
// The paper reports no experiments, so these distributions define the
// workloads of the E1–E8 suite (see DESIGN.md §5 and EXPERIMENTS.md). All
// generators are deterministic given (seed, parameters): they draw through
// util::Rng only, and Instance's stable sort keeps tie order reproducible.
//
// Requirements are drawn on a grid of `capacity` units, which keeps all
// engine arithmetic exact (DESIGN.md §2).
#pragma once

#include <string>
#include <vector>

#include "core/instance.hpp"
#include "online/online_model.hpp"
#include "util/prng.hpp"

namespace sharedres::workloads {

/// Common knobs for the SoS generators.
struct SosConfig {
  int machines = 8;
  core::Res capacity = 1'000'000;  ///< resource units per step
  std::size_t jobs = 256;
  core::Res max_size = 1;   ///< p_j drawn uniformly from [1, max_size]
  std::uint64_t seed = 1;
};

/// r_j uniform on [lo_frac, hi_frac] of capacity (clamped to ≥ 1 unit).
core::Instance uniform_instance(const SosConfig& cfg, double lo_frac = 0.01,
                                double hi_frac = 0.5);

/// Bimodal: mostly light jobs (r ≈ light_frac·C), a p_heavy fraction of heavy
/// jobs (r ≈ heavy_frac·C) — "a few data-intensive jobs among many".
core::Instance bimodal_instance(const SosConfig& cfg, double light_frac = 0.02,
                                double heavy_frac = 0.6,
                                double p_heavy = 0.15);

/// Bounded-Pareto heavy tail for r_j, shape `alpha` (smaller = heavier tail).
core::Instance pareto_instance(const SosConfig& cfg, double alpha = 1.2,
                               double lo_frac = 0.005, double hi_frac = 1.0);

/// Adversarial for the unit engine's window walk (DESIGN.md §4): unit-size
/// jobs with requirements in [1, C/(2m)], so every m-window is light, each
/// step slides to the right border and completes fully, and small jobs
/// accumulate at the front of the virtual order. Ignores cfg.max_size
/// (always unit size). Not part of instance_families(): referenced directly
/// by bench_runtime and the engine-equality tests.
core::Instance front_accumulation_instance(const SosConfig& cfg);

/// Adversarial for naive packers: requirements just above C/(m−1), so that
/// m−1 jobs never quite fit and window placement decides everything.
core::Instance near_boundary_instance(const SosConfig& cfg,
                                      double epsilon_frac = 0.02);

/// Jobs with r_j above capacity (r_j > 1 in paper units, the bin-packing
/// "items larger than a bin" regime) mixed with small jobs.
core::Instance oversized_instance(const SosConfig& cfg,
                                  double p_oversized = 0.2,
                                  double max_over = 3.0);

/// Tiny random instance on a coarse grid — the exact-solver regime. All
/// requirements are multiples of capacity/grid.
core::Instance tiny_grid_instance(int machines, std::size_t jobs,
                                  core::Res grid, core::Res max_size,
                                  std::uint64_t seed);

/// Named dispatch used by benches: "uniform", "bimodal", "pareto",
/// "nearboundary", "oversized". Throws on unknown names.
core::Instance make_instance(const std::string& family, const SosConfig& cfg);

/// Online arrivals (extension): jobs from `family` released in bursts —
/// `burst` jobs arrive together every `gap` steps (Poisson-flavored jitter
/// on the burst sizes). Deterministic per seed.
online::OnlineInstance online_arrivals(const std::string& family,
                                       const SosConfig& cfg,
                                       std::size_t burst = 8,
                                       core::Time gap = 4);

/// The list of family names accepted by make_instance.
const std::vector<std::string>& instance_families();

}  // namespace sharedres::workloads
