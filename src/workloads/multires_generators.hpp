// Synthetic d-resource instance generators (E18 substrate).
//
// The d-resource extension (DESIGN.md §16) schedules jobs that consume
// several shared resources at once; these families exercise the regimes
// that distinguish a multi-resource packer from d independent 1-d ones:
//
//   * "correlated"      — r_{j,k} tracks r_{j,0} (±25% jitter): one axis is
//                         nearly binding and the others are almost free, so
//                         a good d-schedule looks like a good 1-d schedule.
//   * "anticorrelated"  — heavy on axis 0 ⇒ light on the others and vice
//                         versa: pairing complementary jobs is the whole
//                         game (the classic "CPU-bound vs IO-bound" mix).
//   * "vmpack"          — VM-packing flavour: a few discrete flavours
//                         (small/medium/large/burst) with fixed per-axis
//                         footprints plus jitter, mimicking multi-dimensional
//                         bin packing traces.
//
// All generators are deterministic given (seed, parameters), draw through
// util::Rng only, and clamp every requirement to [1, C_k] so the rigid
// d-resource engine accepts every generated job. resources == 1 degenerates
// to ordinary single-resource instances (useful for the d=1 pin tests).
#pragma once

#include <string>
#include <vector>

#include "core/instance.hpp"
#include "util/prng.hpp"

namespace sharedres::workloads {

/// Common knobs for the d-resource generators.
struct MultiResConfig {
  int machines = 8;
  std::size_t resources = 2;       ///< d, in [1, core::kMaxResources]
  core::Res capacity = 1'000'000;  ///< per-axis capacity (same on every axis)
  std::size_t jobs = 64;
  core::Res max_size = 1;  ///< p_j drawn uniformly from [1, max_size]
  std::uint64_t seed = 1;
};

/// Secondary requirements proportional to the primary one (±25% jitter).
core::Instance correlated_multires_instance(const MultiResConfig& cfg,
                                            double lo_frac = 0.02,
                                            double hi_frac = 0.5);

/// Per-job budget split adversarially: jobs heavy on one axis are light on
/// the others, so axes saturate only under complementary pairings.
core::Instance anticorrelated_multires_instance(const MultiResConfig& cfg,
                                                double heavy_frac = 0.55,
                                                double light_frac = 0.05);

/// Discrete VM flavours with fixed per-axis footprints plus ±20% jitter.
core::Instance vmpack_multires_instance(const MultiResConfig& cfg);

/// Named dispatch: "correlated", "anticorrelated", "vmpack". Throws
/// std::invalid_argument on unknown names.
core::Instance make_multires_instance(const std::string& family,
                                      const MultiResConfig& cfg);

/// The list of family names accepted by make_multires_instance.
const std::vector<std::string>& multires_families();

}  // namespace sharedres::workloads
