// Splittable-packing item generators (experiment E4).
//
// The motivating application of [4] is memory allocation in pipelined router
// forwarding engines: forwarding tables (items) are split across memory banks
// (bins), each bank serving at most k tables per lookup cycle.
#pragma once

#include "binpack/packing.hpp"
#include "util/prng.hpp"

namespace sharedres::workloads {

struct PackConfig {
  core::Res capacity = 1'000'000;
  int cardinality = 8;
  std::size_t items = 256;
  std::uint64_t seed = 1;
};

/// Item sizes uniform on [lo_frac, hi_frac] of a bin.
binpack::PackingInstance uniform_items(const PackConfig& cfg,
                                       double lo_frac = 0.05,
                                       double hi_frac = 1.5);

/// Mostly small tables with a few very large ones (bounded Pareto).
binpack::PackingInstance router_tables(const PackConfig& cfg,
                                       double alpha = 1.1,
                                       double lo_frac = 0.02,
                                       double hi_frac = 4.0);

/// Items just above half a bin; any packer lands near n/2 bins, so this
/// family probes constant-factor overheads and LB tightness.
binpack::PackingInstance half_plus_epsilon_items(const PackConfig& cfg,
                                                 double epsilon = 0.02);

/// Adversarial for NextFit: repeated groups of k tiny items followed by one
/// bin-sized item, in that input order. NextFit burns a whole bin's
/// cardinality on the tinies (leaving it almost empty) and then needs a
/// fresh bin for the big item — ratio → 2 — while the sorted sliding window
/// pairs k−1 tinies with big-item parts every bin (ratio → k/(k−1)).
/// `cfg.items` counts groups of k+1 items.
binpack::PackingInstance cardinality_trap_items(const PackConfig& cfg,
                                                double tiny_frac = 0.002);

}  // namespace sharedres::workloads
