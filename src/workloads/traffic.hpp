// Sustained-traffic workloads: arrival processes × job families
// (DESIGN.md §14).
//
// Two views of the same traffic, both pure in their config:
//
//  * traffic_instance — one OnlineInstance whose releases follow a
//    stochastic arrival process (online/arrivals.hpp) and whose jobs come
//    from an offline family (sos_generators.hpp). Feed to the
//    online::DynamicEngine for the deterministic simulation the E16 bench
//    and the percentile gate run on.
//
//  * traffic_stream — the service-facing rendering: one NDJSON instance
//    record per arrival, timestamped with an "arrival" step field, directly
//    submittable to `sharedres_cli serve` (the solver ignores the field; the
//    fast scanner skips it). The closed-loop load generator replays such a
//    stream against the daemon's unix socket, pacing sends by arrival step.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "online/arrivals.hpp"
#include "online/online_model.hpp"
#include "workloads/sos_generators.hpp"

namespace sharedres::workloads {

/// One OnlineInstance with cfg.jobs jobs: shapes drawn from `family` (same
/// distributions as make_instance), releases from `arrivals` — one job per
/// arrival, in an arrival order shuffled independently of the requirement
/// sort (mirroring online_arrivals). Throws std::invalid_argument when the
/// process cannot produce cfg.jobs arrivals (zero rate, or a horizon set in
/// `arrivals` that cuts the stream short).
[[nodiscard]] online::OnlineInstance traffic_instance(
    const std::string& family, const SosConfig& cfg,
    const online::ArrivalConfig& arrivals);

/// Config of an NDJSON request stream: `requests` instance records, each a
/// fresh `family` instance of sos.jobs jobs (per-record seeds derived from
/// sos.seed), released on the arrival process's steps.
struct TrafficStreamConfig {
  std::string family = "uniform";
  SosConfig sos;  ///< sos.jobs = jobs PER REQUEST; sos.seed = stream seed
  online::ArrivalConfig arrivals;
  std::size_t requests = 64;
  std::string id_prefix = "req";  ///< record ids: "<prefix>-<k>"
  std::uint64_t deadline_steps = 0;  ///< per-record budget; 0 = none
};

/// The request lines (no trailing newlines), one per arrival, in arrival
/// order: {"id":"req-0","arrival":T,"machines":M,"capacity":C,"jobs":[...]}
/// (+ "deadline_steps" when configured). Bit-identical for a fixed config.
/// Throws std::invalid_argument when the process cannot produce `requests`
/// arrivals.
[[nodiscard]] std::vector<std::string> traffic_stream(
    const TrafficStreamConfig& cfg);

}  // namespace sharedres::workloads
