#include "workloads/sos_generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sharedres::workloads {

namespace {

using core::Instance;
using core::Job;
using core::Res;

Res clamp_units(double frac, Res capacity, Res lo = 1) {
  const double units = frac * static_cast<double>(capacity);
  const double clamped =
      std::min(std::max(units, static_cast<double>(lo)), 9.0e17);
  return std::max<Res>(lo, static_cast<Res>(std::llround(clamped)));
}

Res draw_size(util::Rng& rng, const SosConfig& cfg) {
  return cfg.max_size <= 1 ? 1 : rng.uniform_int(1, cfg.max_size);
}

}  // namespace

Instance uniform_instance(const SosConfig& cfg, double lo_frac,
                          double hi_frac) {
  util::Rng rng(cfg.seed);
  std::vector<Job> jobs;
  jobs.reserve(cfg.jobs);
  const Res lo = clamp_units(lo_frac, cfg.capacity);
  const Res hi = std::max(lo, clamp_units(hi_frac, cfg.capacity));
  for (std::size_t i = 0; i < cfg.jobs; ++i) {
    jobs.push_back(Job{draw_size(rng, cfg), rng.uniform_int(lo, hi)});
  }
  return Instance(cfg.machines, cfg.capacity, std::move(jobs));
}

Instance bimodal_instance(const SosConfig& cfg, double light_frac,
                          double heavy_frac, double p_heavy) {
  util::Rng rng(cfg.seed);
  std::vector<Job> jobs;
  jobs.reserve(cfg.jobs);
  for (std::size_t i = 0; i < cfg.jobs; ++i) {
    const double base = rng.bernoulli(p_heavy) ? heavy_frac : light_frac;
    // ±25% jitter around the mode keeps requirements distinct.
    const double frac = base * rng.uniform_real(0.75, 1.25);
    jobs.push_back(Job{draw_size(rng, cfg), clamp_units(frac, cfg.capacity)});
  }
  return Instance(cfg.machines, cfg.capacity, std::move(jobs));
}

Instance pareto_instance(const SosConfig& cfg, double alpha, double lo_frac,
                         double hi_frac) {
  util::Rng rng(cfg.seed);
  std::vector<Job> jobs;
  jobs.reserve(cfg.jobs);
  for (std::size_t i = 0; i < cfg.jobs; ++i) {
    const double frac = rng.pareto(alpha, lo_frac, hi_frac);
    jobs.push_back(Job{draw_size(rng, cfg), clamp_units(frac, cfg.capacity)});
  }
  return Instance(cfg.machines, cfg.capacity, std::move(jobs));
}

Instance front_accumulation_instance(const SosConfig& cfg) {
  util::Rng rng(cfg.seed);
  std::vector<Job> jobs;
  jobs.reserve(cfg.jobs);
  const int m = std::max(2, cfg.machines);
  const Res hi = std::max<Res>(
      1, cfg.capacity / (2 * static_cast<Res>(m)));
  for (std::size_t i = 0; i < cfg.jobs; ++i) {
    jobs.push_back(Job{1, rng.uniform_int(1, hi)});
  }
  return Instance(cfg.machines, cfg.capacity, std::move(jobs));
}

Instance near_boundary_instance(const SosConfig& cfg, double epsilon_frac) {
  util::Rng rng(cfg.seed);
  std::vector<Job> jobs;
  jobs.reserve(cfg.jobs);
  const int denom = std::max(2, cfg.machines - 1);
  const double base = 1.0 / static_cast<double>(denom);
  for (std::size_t i = 0; i < cfg.jobs; ++i) {
    // Slightly above C/(m−1): m−1 of these never fit together.
    const double frac = base * (1.0 + rng.uniform_real(0.0, epsilon_frac));
    jobs.push_back(Job{draw_size(rng, cfg), clamp_units(frac, cfg.capacity)});
  }
  return Instance(cfg.machines, cfg.capacity, std::move(jobs));
}

Instance oversized_instance(const SosConfig& cfg, double p_oversized,
                            double max_over) {
  util::Rng rng(cfg.seed);
  std::vector<Job> jobs;
  jobs.reserve(cfg.jobs);
  for (std::size_t i = 0; i < cfg.jobs; ++i) {
    double frac;
    if (rng.bernoulli(p_oversized)) {
      frac = rng.uniform_real(1.0, max_over);  // r_j > capacity
    } else {
      frac = rng.uniform_real(0.01, 0.4);
    }
    jobs.push_back(Job{draw_size(rng, cfg), clamp_units(frac, cfg.capacity)});
  }
  return Instance(cfg.machines, cfg.capacity, std::move(jobs));
}

Instance tiny_grid_instance(int machines, std::size_t n, Res grid,
                            Res max_size, std::uint64_t seed) {
  if (grid < 1) throw std::invalid_argument("tiny_grid_instance: grid < 1");
  util::Rng rng(seed);
  std::vector<Job> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Res p = max_size <= 1 ? 1 : rng.uniform_int(1, max_size);
    // Requirement between 1 and ~1.5·capacity on the coarse grid.
    const Res r = rng.uniform_int(1, grid + grid / 2);
    jobs.push_back(Job{p, r});
  }
  return Instance(machines, grid, std::move(jobs));
}

Instance make_instance(const std::string& family, const SosConfig& cfg) {
  if (family == "uniform") return uniform_instance(cfg);
  if (family == "bimodal") return bimodal_instance(cfg);
  if (family == "pareto") return pareto_instance(cfg);
  if (family == "nearboundary") return near_boundary_instance(cfg);
  if (family == "oversized") return oversized_instance(cfg);
  throw std::invalid_argument("unknown instance family: " + family);
}

online::OnlineInstance online_arrivals(const std::string& family,
                                       const SosConfig& cfg,
                                       std::size_t burst, core::Time gap) {
  if (burst < 1 || gap < 1) {
    throw std::invalid_argument("online_arrivals: burst and gap must be >= 1");
  }
  const Instance base = make_instance(family, cfg);
  // Derive burst jitter from a separate stream so the job shapes match the
  // offline family exactly.
  util::Rng rng(cfg.seed ^ 0x9e3779b97f4a7c15ULL);
  online::OnlineInstance out;
  out.machines = cfg.machines;
  out.capacity = cfg.capacity;
  out.jobs.reserve(base.size());
  // Arrival order is independent of the requirement sort.
  std::vector<core::JobId> arrival(base.size());
  for (core::JobId j = 0; j < base.size(); ++j) arrival[j] = j;
  rng.shuffle(arrival);

  core::Time release = 1;
  std::size_t in_burst = 0;
  std::size_t burst_size = static_cast<std::size_t>(
      rng.uniform_int(1, 2 * static_cast<std::int64_t>(burst)));
  for (const core::JobId j : arrival) {
    if (in_burst >= burst_size) {
      release += gap;
      in_burst = 0;
      burst_size = static_cast<std::size_t>(
          rng.uniform_int(1, 2 * static_cast<std::int64_t>(burst)));
    }
    out.jobs.push_back(online::OnlineJob{release, base.job(j)});
    ++in_burst;
  }
  return out;
}

const std::vector<std::string>& instance_families() {
  static const std::vector<std::string> kFamilies = {
      "uniform", "bimodal", "pareto", "nearboundary", "oversized"};
  return kFamilies;
}

}  // namespace sharedres::workloads
