#include "workloads/binpack_generators.hpp"

#include <algorithm>
#include <cmath>

namespace sharedres::workloads {

namespace {

using binpack::PackingInstance;
using core::Res;

Res frac_units(double frac, Res capacity) {
  const double units = frac * static_cast<double>(capacity);
  return std::max<Res>(1, static_cast<Res>(std::llround(
                              std::min(units, 9.0e17))));
}

}  // namespace

PackingInstance uniform_items(const PackConfig& cfg, double lo_frac,
                              double hi_frac) {
  util::Rng rng(cfg.seed);
  PackingInstance inst;
  inst.capacity = cfg.capacity;
  inst.cardinality = cfg.cardinality;
  inst.items.reserve(cfg.items);
  for (std::size_t i = 0; i < cfg.items; ++i) {
    inst.items.push_back(
        frac_units(rng.uniform_real(lo_frac, hi_frac), cfg.capacity));
  }
  return inst;
}

PackingInstance router_tables(const PackConfig& cfg, double alpha,
                              double lo_frac, double hi_frac) {
  util::Rng rng(cfg.seed);
  PackingInstance inst;
  inst.capacity = cfg.capacity;
  inst.cardinality = cfg.cardinality;
  inst.items.reserve(cfg.items);
  for (std::size_t i = 0; i < cfg.items; ++i) {
    inst.items.push_back(
        frac_units(rng.pareto(alpha, lo_frac, hi_frac), cfg.capacity));
  }
  return inst;
}

PackingInstance half_plus_epsilon_items(const PackConfig& cfg,
                                        double epsilon) {
  util::Rng rng(cfg.seed);
  PackingInstance inst;
  inst.capacity = cfg.capacity;
  inst.cardinality = cfg.cardinality;
  inst.items.reserve(cfg.items);
  for (std::size_t i = 0; i < cfg.items; ++i) {
    const double frac = 0.5 * (1.0 + rng.uniform_real(0.0, epsilon));
    inst.items.push_back(frac_units(frac, cfg.capacity));
  }
  return inst;
}

PackingInstance cardinality_trap_items(const PackConfig& cfg,
                                       double tiny_frac) {
  util::Rng rng(cfg.seed);
  PackingInstance inst;
  inst.capacity = cfg.capacity;
  inst.cardinality = cfg.cardinality;
  const auto k = static_cast<std::size_t>(cfg.cardinality);
  inst.items.reserve(cfg.items * k);
  for (std::size_t g = 0; g < cfg.items; ++g) {
    // k−1 tiny items, then one exactly-bin-sized item. NextFit fills a bin
    // with the tinies plus a big-item part and closes it FULL; the big
    // item's sliver spills into the next bin, which then closes on
    // cardinality while nearly empty — two bins per group.
    for (std::size_t i = 0; i + 1 < k; ++i) {
      inst.items.push_back(
          frac_units(tiny_frac * rng.uniform_real(0.5, 1.0), cfg.capacity));
    }
    inst.items.push_back(cfg.capacity);
  }
  return inst;
}

}  // namespace sharedres::workloads
