// Synthetic SAS task-set generators (experiment E5).
#pragma once

#include "sas/task.hpp"
#include "util/prng.hpp"

namespace sharedres::workloads {

struct SasConfig {
  int machines = 8;
  core::Res capacity = 1'000'000;
  std::size_t tasks = 32;
  std::size_t min_jobs = 1;   ///< jobs per task drawn uniformly from this range
  std::size_t max_jobs = 24;
  std::uint64_t seed = 1;
};

/// Mixed cloud workload: each task is either communication-heavy (few jobs
/// with large requirements — lands in T1) or embarrassingly parallel (many
/// tiny-requirement jobs — lands in T2), with probability p_heavy of the
/// former. Mirrors the composed-services story of the paper's Section 4.
sas::SasInstance mixed_task_set(const SasConfig& cfg, double p_heavy = 0.4);

/// All tasks heavy (exercise Listing 3 / Lemma 4.1 alone).
sas::SasInstance heavy_task_set(const SasConfig& cfg);

/// All tasks light (exercise Listing 4 / Lemma 4.2 alone).
sas::SasInstance light_task_set(const SasConfig& cfg);

}  // namespace sharedres::workloads
