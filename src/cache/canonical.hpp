// Canonical normal form for SoS instances (the solve cache's key domain).
//
// Two instances are solve-equivalent when one can be obtained from the other
// by permuting jobs and/or multiplying every requirement AND the capacity by
// a common factor (the paper's rescaling remark; see core/rescale.hpp for
// the real-sizes direction). canonicalize() maps every member of such an
// equivalence class to the same representative:
//
//   * jobs in the canonical total order on (r_j, p_j) — already enforced by
//     core::Instance's constructor, which sorts by non-decreasing
//     requirement with ties broken by non-decreasing size, so a permuted
//     multiset re-sorts to the identical sequence;
//   * requirements and capacity divided by g = gcd(C, r_1, …, r_n), the
//     scale-free representative (an empty instance normalizes to C' = 1).
//
// The representative is paired with a serialized key (the exact byte string
// equality is decided on) and a 128-bit structural hash of that key. The key
// layout reserves a resource-dimension count so a future many-shared-
// resources generalization (Maack/Pukrop/Rau) extends the format instead of
// replacing it:
//
//   byte 0  key-format version (kKeyFormatVersion)
//   byte 1  resource dimension count d (currently always 1)
//   u64 LE  machines m
//   u64 LE  canonical capacity C' (one value per dimension)
//   u64 LE  job count n
//   n × (u64 LE size p_j, u64 LE canonical requirement r'_j per dimension)
//
// Everything here is deterministic: same instance → same key bytes → same
// hash, on every platform (explicit little-endian serialization, fixed
// mixing constants).
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"

namespace sharedres::cache {

inline constexpr std::uint8_t kKeyFormatVersion = 1;

/// 128-bit structural hash: two independently seeded 64-bit lanes over the
/// key bytes. Collisions across both lanes are astronomically unlikely, and
/// the cache still verifies full key bytes on every hit (a hash is a filter,
/// never the authority).
struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Hash128&, const Hash128&) = default;
};

/// Hash an arbitrary byte string (exposed for tests and the fuzz harness).
[[nodiscard]] Hash128 hash_bytes(const std::vector<std::uint8_t>& bytes);

/// The canonical representative of an instance's equivalence class.
///
/// Deliberately lazy: only the serialized key and its hash are materialized,
/// because the cache's hit path needs nothing else — building the reduced
/// Instance (allocation + re-sort + totals) on every lookup would cost more
/// than the lookup itself. instance() decodes the key on demand; only the
/// producer of a cache miss pays for it, once per unique instance.
struct CanonicalForm {
  /// g ≥ 1 with source capacity = canonical capacity · g and source
  /// r_j = canonical r'_j · g (job-by-job in sorted order).
  core::Res scale = 1;
  /// Serialized key (layout in the file comment). Byte equality of keys is
  /// exactly solve-equivalence of the sources.
  std::vector<std::uint8_t> key;
  /// hash_bytes(key).
  Hash128 hash;

  /// Materialize the representative: same machines and job sizes as the
  /// source, requirements and capacity divided by `scale`. Solving it yields
  /// the source instance's makespan directly; shares scale back by
  /// multiplication.
  [[nodiscard]] core::Instance instance() const;
};

/// Reduce `instance` to its canonical form. Never throws for a validly
/// constructed Instance: the reduced values stay in range (g divides every
/// requirement and the capacity) and totals only shrink.
[[nodiscard]] CanonicalForm canonicalize(const core::Instance& instance);

/// Map a schedule of the canonical instance back to the source scaling:
/// identical block structure with every share multiplied by `scale`. Job ids
/// are untouched — the canonical job order IS the source's sorted order, so
/// a canonical schedule indexes any instance of the class directly.
[[nodiscard]] core::Schedule decanonicalize_schedule(
    const core::Schedule& canonical, core::Res scale);

}  // namespace sharedres::cache
