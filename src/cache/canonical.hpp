// Canonical normal form for SoS instances (the solve cache's key domain).
//
// Two instances are solve-equivalent when one can be obtained from the other
// by permuting jobs and/or multiplying every requirement AND the capacity of
// any resource axis by a common per-axis factor (the paper's rescaling
// remark; see core/rescale.hpp for the real-sizes direction), and — for the
// d-resource generalization — by permuting the SECONDARY axes 1..d-1 among
// themselves (axis 0 is semantically distinguished: progress is credited in
// its units). canonicalize() maps every member of such an equivalence class
// to the same representative:
//
//   * jobs in the canonical total order on (r_{j,0}, p_j, r_{j,1}, …) —
//     already enforced by core::Instance's constructor, so a permuted
//     multiset re-sorts to the identical sequence;
//   * every axis k divided by its g_k = gcd(C_k, r_{1,k}, …, r_{n,k}), the
//     scale-free representative (an empty instance normalizes to C'_k = 1);
//   * secondary axes reordered by content (normalized capacity, then the
//     normalized requirement column), so axis-permuted sources share a key.
//
// Secondary-axis reordering is applied only when no two jobs tie on
// (r_{j,0}, p_j) while differing on a secondary axis: reordering axes
// reorders such tied jobs (the sort key includes the secondary axes), which
// would break the "canonical job order IS the source's sorted order"
// identity the cache's schedule mapping relies on. Tied instances fall back
// to the source axis order — they may miss the cache across permuted twins
// (hit-rate, never correctness), and every other invariance still holds.
//
// The representative is paired with a serialized key (the exact byte string
// equality is decided on) and a 128-bit structural hash of that key. Key
// layout (d = 1 keys are byte-identical to the historical single-resource
// format, kKeyFormatVersion stays 1):
//
//   byte 0  key-format version (kKeyFormatVersion)
//   byte 1  resource dimension count d
//   u64 LE  machines m
//   d × u64 LE  canonical capacities C'_k (canonical axis order)
//   u64 LE  job count n
//   n × (u64 LE size p_j, d × u64 LE canonical requirements r'_{j,k})
//
// Everything here is deterministic: same instance → same key bytes → same
// hash, on every platform (explicit little-endian serialization, fixed
// mixing constants).
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"

namespace sharedres::cache {

inline constexpr std::uint8_t kKeyFormatVersion = 1;

/// 128-bit structural hash: two independently seeded 64-bit lanes over the
/// key bytes. Collisions across both lanes are astronomically unlikely, and
/// the cache still verifies full key bytes on every hit (a hash is a filter,
/// never the authority).
struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Hash128&, const Hash128&) = default;
};

/// Hash an arbitrary byte string (exposed for tests and the fuzz harness).
[[nodiscard]] Hash128 hash_bytes(const std::vector<std::uint8_t>& bytes);

/// The canonical representative of an instance's equivalence class.
///
/// Deliberately lazy: only the serialized key and its hash are materialized,
/// because the cache's hit path needs nothing else — building the reduced
/// Instance (allocation + re-sort + totals) on every lookup would cost more
/// than the lookup itself. instance() decodes the key on demand; only the
/// producer of a cache miss pays for it, once per unique instance.
struct CanonicalForm {
  /// Primary-axis scale g_0 ≥ 1: source capacity = canonical capacity · g_0
  /// and source r_{j,0} = canonical r'_{j,0} · g_0 (job-by-job in sorted
  /// order). Shares are primary-axis units, so this is the only scale
  /// decanonicalize_schedule needs at any d.
  core::Res scale = 1;
  /// Per CANONICAL axis k: the source-axis scale g_{axis_order[k]}. Size d;
  /// axis_scales[0] == scale.
  std::vector<core::Res> axis_scales;
  /// Canonical axis k was source axis axis_order[k]; axis_order[0] == 0
  /// always (the primary axis is never permuted). Size d.
  std::vector<std::uint8_t> axis_order;
  /// Serialized key (layout in the file comment). Byte equality of keys
  /// implies solve-equivalence of the sources.
  std::vector<std::uint8_t> key;
  /// hash_bytes(key).
  Hash128 hash;

  /// Materialize the representative: same machines and job sizes as the
  /// source, every axis divided by its scale (axes in canonical order).
  /// Solving it yields the source instance's makespan directly; shares scale
  /// back by multiplication.
  [[nodiscard]] core::Instance instance() const;
};

/// Reduce `instance` to its canonical form. Never throws for a validly
/// constructed Instance: the reduced values stay in range (g_k divides every
/// axis-k requirement and capacity) and totals only shrink.
[[nodiscard]] CanonicalForm canonicalize(const core::Instance& instance);

/// Map a schedule of the canonical instance back to the source scaling:
/// identical block structure with every share multiplied by `scale` (the
/// primary-axis scale). Job ids are untouched — the canonical job order IS
/// the source's sorted order at every d (see the axis-reordering caveat in
/// the file comment), so a canonical schedule indexes any instance of the
/// class directly.
[[nodiscard]] core::Schedule decanonicalize_schedule(
    const core::Schedule& canonical, core::Res scale);

}  // namespace sharedres::cache
