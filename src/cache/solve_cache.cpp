#include "cache/solve_cache.hpp"

#include <atomic>
#include <condition_variable>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace sharedres::cache {

namespace detail {

/// One cached key. The shard lock protects map/LRU membership; the entry's
/// own mutex protects only state/value, so producers and waiters never
/// contend with acquire().
struct Entry {
  enum class State { kPending, kReady, kAbandoned };

  std::vector<std::uint8_t> key;
  Hash128 hash;

  std::mutex mutex;
  std::condition_variable cv;
  State state = State::kPending;
  CacheValue value;
};

}  // namespace detail

namespace {

using detail::Entry;

/// Resident-footprint estimate used for the bytes gauge: the serialized key
/// plus the fixed per-entry overhead. Value bytes are accounted separately
/// at fill() time (a monotone counter), because values arrive on worker
/// threads after eviction decisions were already made.
std::int64_t entry_bytes(const Entry& entry) {
  return static_cast<std::int64_t>(sizeof(Entry) + entry.key.size());
}

std::uint64_t value_bytes(const CacheValue& value) {
  std::uint64_t bytes = sizeof(CacheValue);
  if (value.schedule) {
    bytes += value.schedule->blocks().size() * sizeof(core::Block);
    for (const core::Block& block : value.schedule->blocks()) {
      bytes += block.assignments.size() * sizeof(core::Assignment);
    }
  }
  return bytes;
}

}  // namespace

struct SolveCache::Impl {
  struct Shard {
    std::mutex mutex;
    /// hash.lo → entries whose hash collides in the fast lane; the scan
    /// verifies the full 128-bit hash and then the key bytes.
    std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<Entry>>> map;
    /// Front = least recently used.
    std::list<std::shared_ptr<Entry>> lru;
    std::size_t capacity = 1;
  };

  std::vector<Shard> shards;

  // Counters live here (not per shard) so stats() is one pass; they are
  // atomics because fill/abandon accounting arrives from worker threads.
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> abandoned{0};
  std::atomic<std::uint64_t> value_bytes{0};
  std::atomic<std::int64_t> resident_bytes{0};
  std::atomic<std::uint64_t> resident_entries{0};
};

SolveCache::SolveCache(const Config& config) : impl_(new Impl) {
  const std::size_t capacity = config.capacity == 0 ? 1 : config.capacity;
  std::size_t shards = config.shards == 0 ? 1 : config.shards;
  if (shards > capacity) shards = capacity;
  impl_->shards = std::vector<Impl::Shard>(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    impl_->shards[s].capacity = capacity / shards + (s < capacity % shards);
  }
}

SolveCache::~SolveCache() = default;

std::size_t SolveCache::shard_count() const { return impl_->shards.size(); }

SolveCache::Handle SolveCache::acquire(const CanonicalForm& form) {
  Impl::Shard& shard =
      impl_->shards[form.hash.hi % impl_->shards.size()];
  const std::lock_guard<std::mutex> lock(shard.mutex);

  auto& bucket = shard.map[form.hash.lo];
  for (const std::shared_ptr<Entry>& entry : bucket) {
    if (entry->hash == form.hash && entry->key == form.key) {
      // Hit (any state — pending coalesces, abandoned short-circuits to the
      // local-solve fallback). Refresh LRU position.
      for (auto it = shard.lru.begin(); it != shard.lru.end(); ++it) {
        if (it->get() == entry.get()) {
          shard.lru.splice(shard.lru.end(), shard.lru, it);
          break;
        }
      }
      impl_->hits.fetch_add(1, std::memory_order_relaxed);
      return Handle(entry, /*hit=*/true, this);
    }
  }

  auto entry = std::make_shared<Entry>();
  entry->key = form.key;
  entry->hash = form.hash;
  bucket.push_back(entry);
  shard.lru.push_back(entry);
  impl_->misses.fetch_add(1, std::memory_order_relaxed);
  impl_->resident_bytes.fetch_add(entry_bytes(*entry),
                                  std::memory_order_relaxed);
  impl_->resident_entries.fetch_add(1, std::memory_order_relaxed);

  while (shard.lru.size() > shard.capacity) {
    const std::shared_ptr<Entry> victim = shard.lru.front();
    shard.lru.pop_front();
    auto victim_bucket = shard.map.find(victim->hash.lo);
    if (victim_bucket != shard.map.end()) {
      auto& entries = victim_bucket->second;
      for (auto it = entries.begin(); it != entries.end(); ++it) {
        if (it->get() == victim.get()) {
          entries.erase(it);
          break;
        }
      }
      if (entries.empty()) shard.map.erase(victim_bucket);
    }
    impl_->evictions.fetch_add(1, std::memory_order_relaxed);
    impl_->resident_bytes.fetch_sub(entry_bytes(*victim),
                                    std::memory_order_relaxed);
    impl_->resident_entries.fetch_sub(1, std::memory_order_relaxed);
    // In-flight handles still pin the victim via shared_ptr: a pending
    // producer fills it and its waiters are served, it just is not findable
    // for later acquires.
  }

  return Handle(entry, /*hit=*/false, this);
}

SolveCache::Stats SolveCache::stats() const {
  Stats s;
  s.hits = impl_->hits.load(std::memory_order_relaxed);
  s.misses = impl_->misses.load(std::memory_order_relaxed);
  s.inserts = s.misses;
  s.evictions = impl_->evictions.load(std::memory_order_relaxed);
  s.abandoned = impl_->abandoned.load(std::memory_order_relaxed);
  s.value_bytes = impl_->value_bytes.load(std::memory_order_relaxed);
  s.resident_bytes = impl_->resident_bytes.load(std::memory_order_relaxed);
  s.resident_entries = static_cast<std::size_t>(
      impl_->resident_entries.load(std::memory_order_relaxed));
  return s;
}

void SolveCache::export_metrics(obs::Registry& registry) const {
  const Stats s = stats();
  registry.counter("cache.hits").add(s.hits);
  registry.counter("cache.misses").add(s.misses);
  registry.counter("cache.inserts").add(s.inserts);
  registry.counter("cache.evictions").add(s.evictions);
  registry.counter("cache.abandoned").add(s.abandoned);
  registry.counter("cache.value_bytes").add(s.value_bytes);
  registry.gauge("cache.resident_bytes").add(s.resident_bytes);
  registry.gauge("cache.resident_entries")
      .add(static_cast<std::int64_t>(s.resident_entries));
}

SolveCache::Handle::Handle(std::shared_ptr<detail::Entry> entry, bool hit,
                           SolveCache* owner)
    : entry_(std::move(entry)), hit_(hit), owner_(owner) {}

SolveCache::Handle::Handle(Handle&& other) noexcept
    : entry_(std::move(other.entry_)),
      hit_(other.hit_),
      filled_(other.filled_),
      owner_(other.owner_) {
  other.entry_.reset();
  other.owner_ = nullptr;
}

SolveCache::Handle& SolveCache::Handle::operator=(Handle&& other) noexcept {
  if (this != &other) {
    // Release the current entry with producer semantics before adopting.
    Handle tmp(std::move(*this));
    (void)tmp;
    entry_ = std::move(other.entry_);
    hit_ = other.hit_;
    filled_ = other.filled_;
    owner_ = other.owner_;
    other.entry_.reset();
    other.owner_ = nullptr;
  }
  return *this;
}

SolveCache::Handle::~Handle() {
  if (entry_ && !hit_ && !filled_) {
    {
      const std::lock_guard<std::mutex> lock(entry_->mutex);
      entry_->state = Entry::State::kAbandoned;
    }
    entry_->cv.notify_all();
    if (owner_ != nullptr) {
      owner_->impl_->abandoned.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void SolveCache::Handle::fill(CacheValue value) {
  if (owner_ != nullptr) {
    owner_->impl_->value_bytes.fetch_add(value_bytes(value),
                                         std::memory_order_relaxed);
  }
  {
    const std::lock_guard<std::mutex> lock(entry_->mutex);
    entry_->value = std::move(value);
    entry_->state = Entry::State::kReady;
  }
  entry_->cv.notify_all();
  filled_ = true;
}

const CacheValue* SolveCache::Handle::wait() const {
  std::unique_lock<std::mutex> lock(entry_->mutex);
  entry_->cv.wait(lock,
                  [&] { return entry_->state != Entry::State::kPending; });
  return entry_->state == Entry::State::kReady ? &entry_->value : nullptr;
}

}  // namespace sharedres::cache
