#include "cache/canonical.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <numeric>
#include <utility>

#include "core/job.hpp"
#include "util/checked.hpp"

namespace sharedres::cache {

namespace {

/// Native word ↔ canonical little-endian bytes. memcpy keeps the loads and
/// stores single instructions; the byte swap on big-endian hosts keeps the
/// key (and therefore the hash) platform-independent.
std::uint64_t to_le(std::uint64_t v) {
  if constexpr (std::endian::native == std::endian::big) {
    return __builtin_bswap64(v);
  }
  return v;
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  const std::uint64_t le = to_le(v);
  std::memcpy(out, &le, 8);
}

std::uint64_t read_u64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  std::memcpy(&v, in, 8);
  return to_le(v);
}

/// splitmix64 finalizer — full avalanche, fixed constants.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// One multiply-fold per word, splitmix64 avalanche at the end. The hash is
/// only a filter — every hit verifies full key bytes — so one multiply of
/// diffusion per word is enough, and it keeps the per-lookup cost near
/// memory bandwidth. The rotate stops plain xor-cancellation between
/// neighbouring words.
std::uint64_t hash_lane(const std::vector<std::uint8_t>& bytes,
                        std::uint64_t seed) {
  std::uint64_t h = mix64(seed);
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    h = std::rotl(h, 27) ^ ((read_u64(bytes.data() + i) ^ h) *
                            0x9e3779b97f4a7c15ULL);
  }
  std::uint64_t tail = 0;
  for (std::size_t b = 0; i < bytes.size(); ++i, ++b) {
    tail |= static_cast<std::uint64_t>(bytes[i]) << (8 * b);
  }
  h = mix64(h ^ tail);
  return mix64(h ^ static_cast<std::uint64_t>(bytes.size()));
}

/// True iff two sorted jobs tie on (r_0, p) while differing on a secondary
/// axis anywhere in the instance. Sorted order makes (r_0, p) groups
/// contiguous, so adjacent comparison suffices.
bool has_secondary_ties(const core::Instance& instance) {
  const std::size_t n = instance.size();
  const std::size_t d = instance.resource_count();
  for (std::size_t j = 1; j < n; ++j) {
    const core::Job& a = instance.job(j - 1);
    const core::Job& b = instance.job(j);
    if (a.requirement != b.requirement || a.size != b.size) continue;
    for (std::size_t k = 1; k < d; ++k) {
      if (instance.requirement(j - 1, k) != instance.requirement(j, k)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Hash128 hash_bytes(const std::vector<std::uint8_t>& bytes) {
  return Hash128{hash_lane(bytes, 0x5361526573436163ULL),
                 hash_lane(bytes, 0x436e6f6e6963616cULL)};
}

CanonicalForm canonicalize(const core::Instance& instance) {
  const std::size_t n = instance.size();
  const std::size_t d = instance.resource_count();

  // Per-axis g_k = gcd(C_k, r_{1,k}, …, r_{n,k}); with no jobs this is C_k
  // itself, so the empty instance normalizes to capacity 1 on every axis.
  std::vector<core::Res> scales(d);
  for (std::size_t k = 0; k < d; ++k) {
    core::Res g = instance.capacity(k);
    const core::Res* reqs = instance.axis_requirements(k);
    for (std::size_t j = 0; j < n; ++j) g = std::gcd(g, reqs[j]);
    scales[k] = g;
  }

  // Canonical secondary-axis order: content-sorted on the normalized
  // (capacity, requirement column) descriptor, so axis-permuted sources
  // serialize identically. Skipped when (r_0, p)-tied jobs differ on a
  // secondary axis — reordering axes would reorder those jobs (the instance
  // sort key includes the secondary axes) and the canonical job order would
  // no longer be the source's sorted order (file comment of the header).
  std::vector<std::uint8_t> order(d);
  std::iota(order.begin(), order.end(), std::uint8_t{0});
  if (d > 1 && !has_secondary_ties(instance)) {
    const auto axis_less = [&](std::uint8_t a, std::uint8_t b) {
      const core::Res ca = instance.capacity(a) / scales[a];
      const core::Res cb = instance.capacity(b) / scales[b];
      if (ca != cb) return ca < cb;
      const core::Res* ra = instance.axis_requirements(a);
      const core::Res* rb = instance.axis_requirements(b);
      for (std::size_t j = 0; j < n; ++j) {
        const core::Res va = ra[j] / scales[a];
        const core::Res vb = rb[j] / scales[b];
        if (va != vb) return va < vb;
      }
      return false;
    };
    std::stable_sort(order.begin() + 1, order.end(), axis_less);
  }

  // Serialize straight from the source's sorted jobs, dividing each axis by
  // its g on the fly. Dividing a whole axis by a common factor preserves the
  // canonical total order, so this byte sequence IS the reduced instance's
  // serialization: canonical job j is source (sorted) job j.
  CanonicalForm form;
  form.scale = scales[0];
  form.axis_order = order;
  form.axis_scales.resize(d);
  for (std::size_t k = 0; k < d; ++k) form.axis_scales[k] = scales[order[k]];
  form.key.resize(2 + 8 * (1 + d + 1 + n * (1 + d)));
  std::uint8_t* out = form.key.data();
  *out++ = kKeyFormatVersion;
  *out++ = static_cast<std::uint8_t>(d);
  put_u64(out, static_cast<std::uint64_t>(instance.machines()));
  out += 8;
  for (std::size_t k = 0; k < d; ++k) {
    put_u64(out, static_cast<std::uint64_t>(instance.capacity(order[k]) /
                                            scales[order[k]]));
    out += 8;
  }
  put_u64(out, static_cast<std::uint64_t>(n));
  out += 8;
  for (std::size_t j = 0; j < n; ++j) {
    put_u64(out, static_cast<std::uint64_t>(instance.job(j).size));
    out += 8;
    for (std::size_t k = 0; k < d; ++k) {
      put_u64(out, static_cast<std::uint64_t>(
                       instance.requirement(j, order[k]) / scales[order[k]]));
      out += 8;
    }
  }
  form.hash = hash_bytes(form.key);
  return form;
}

core::Instance CanonicalForm::instance() const {
  // Inverse of the serializer above; the Instance constructor's sort is the
  // identity permutation on a decoded key (the jobs were serialized in
  // canonical order), so this is a straight O(n·d) rebuild plus validation.
  const std::uint8_t* in = key.data();
  const std::size_t d = key[1];
  const auto machines = static_cast<int>(read_u64(in + 2));
  in += 10;
  std::vector<core::Res> capacities(d);
  for (std::size_t k = 0; k < d; ++k) {
    capacities[k] = static_cast<core::Res>(read_u64(in));
    in += 8;
  }
  const auto count = static_cast<std::size_t>(read_u64(in));
  in += 8;
  if (d == 1) {
    std::vector<core::Job> jobs;
    jobs.reserve(count);
    for (std::size_t j = 0; j < count; ++j) {
      jobs.push_back(core::Job{static_cast<core::Res>(read_u64(in)),
                               static_cast<core::Res>(read_u64(in + 8))});
      in += 16;
    }
    return core::Instance(machines, capacities[0], std::move(jobs));
  }
  std::vector<core::MultiJob> jobs(count);
  for (std::size_t j = 0; j < count; ++j) {
    jobs[j].size = static_cast<core::Res>(read_u64(in));
    in += 8;
    jobs[j].requirements.resize(d);
    for (std::size_t k = 0; k < d; ++k) {
      jobs[j].requirements[k] = static_cast<core::Res>(read_u64(in));
      in += 8;
    }
  }
  return core::Instance(machines, std::move(capacities), std::move(jobs));
}

core::Schedule decanonicalize_schedule(const core::Schedule& canonical,
                                       core::Res scale) {
  core::Schedule out;
  out.reserve_blocks(canonical.blocks().size());
  for (const core::Block& block : canonical.blocks()) {
    std::vector<core::Assignment> assignments;
    assignments.reserve(block.assignments.size());
    for (const core::Assignment& a : block.assignments) {
      assignments.push_back(
          core::Assignment{a.job, util::mul_checked(a.share, scale)});
    }
    out.append(block.length, std::move(assignments));
  }
  return out;
}

}  // namespace sharedres::cache
