#include "cache/canonical.hpp"

#include <bit>
#include <cstring>
#include <numeric>
#include <utility>

#include "core/job.hpp"
#include "util/checked.hpp"

namespace sharedres::cache {

namespace {

/// Native word ↔ canonical little-endian bytes. memcpy keeps the loads and
/// stores single instructions; the byte swap on big-endian hosts keeps the
/// key (and therefore the hash) platform-independent.
std::uint64_t to_le(std::uint64_t v) {
  if constexpr (std::endian::native == std::endian::big) {
    return __builtin_bswap64(v);
  }
  return v;
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  const std::uint64_t le = to_le(v);
  std::memcpy(out, &le, 8);
}

std::uint64_t read_u64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  std::memcpy(&v, in, 8);
  return to_le(v);
}

/// splitmix64 finalizer — full avalanche, fixed constants.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// One multiply-fold per word, splitmix64 avalanche at the end. The hash is
/// only a filter — every hit verifies full key bytes — so one multiply of
/// diffusion per word is enough, and it keeps the per-lookup cost near
/// memory bandwidth. The rotate stops plain xor-cancellation between
/// neighbouring words.
std::uint64_t hash_lane(const std::vector<std::uint8_t>& bytes,
                        std::uint64_t seed) {
  std::uint64_t h = mix64(seed);
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    h = std::rotl(h, 27) ^ ((read_u64(bytes.data() + i) ^ h) *
                            0x9e3779b97f4a7c15ULL);
  }
  std::uint64_t tail = 0;
  for (std::size_t b = 0; i < bytes.size(); ++i, ++b) {
    tail |= static_cast<std::uint64_t>(bytes[i]) << (8 * b);
  }
  h = mix64(h ^ tail);
  return mix64(h ^ static_cast<std::uint64_t>(bytes.size()));
}

}  // namespace

Hash128 hash_bytes(const std::vector<std::uint8_t>& bytes) {
  return Hash128{hash_lane(bytes, 0x5361526573436163ULL),
                 hash_lane(bytes, 0x436e6f6e6963616cULL)};
}

CanonicalForm canonicalize(const core::Instance& instance) {
  // g = gcd(C, r_1, …, r_n); with no jobs this is C itself, so the empty
  // instance normalizes to capacity 1 for every source capacity.
  core::Res g = instance.capacity();
  for (const core::Job& job : instance.jobs()) {
    g = std::gcd(g, job.requirement);
  }

  // Serialize straight from the source's sorted jobs, dividing by g on the
  // fly. Dividing every requirement by the same g preserves the canonical
  // total order, so this byte sequence IS the reduced instance's
  // serialization: canonical job j is source (sorted) job j.
  CanonicalForm form{g, {}, {}};
  form.key.resize(2 + 8 * (3 + 2 * instance.size()));
  std::uint8_t* out = form.key.data();
  *out++ = kKeyFormatVersion;
  *out++ = 1;  // resource dimensions (multi-resource extension)
  put_u64(out, static_cast<std::uint64_t>(instance.machines()));
  put_u64(out + 8, static_cast<std::uint64_t>(instance.capacity() / g));
  put_u64(out + 16, static_cast<std::uint64_t>(instance.size()));
  out += 24;
  for (const core::Job& job : instance.jobs()) {
    put_u64(out, static_cast<std::uint64_t>(job.size));
    put_u64(out + 8, static_cast<std::uint64_t>(job.requirement / g));
    out += 16;
  }
  form.hash = hash_bytes(form.key);
  return form;
}

core::Instance CanonicalForm::instance() const {
  // Inverse of the serializer above; the Instance constructor's sort is the
  // identity permutation on a decoded key (the jobs were serialized in
  // canonical order), so this is a straight O(n) rebuild plus validation.
  const std::uint8_t* in = key.data();
  const auto machines = static_cast<int>(read_u64(in + 2));
  const auto capacity = static_cast<core::Res>(read_u64(in + 10));
  const auto count = static_cast<std::size_t>(read_u64(in + 18));
  in += 26;
  std::vector<core::Job> jobs;
  jobs.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    jobs.push_back(core::Job{static_cast<core::Res>(read_u64(in)),
                             static_cast<core::Res>(read_u64(in + 8))});
    in += 16;
  }
  return core::Instance(machines, capacity, std::move(jobs));
}

core::Schedule decanonicalize_schedule(const core::Schedule& canonical,
                                       core::Res scale) {
  core::Schedule out;
  out.reserve_blocks(canonical.blocks().size());
  for (const core::Block& block : canonical.blocks()) {
    std::vector<core::Assignment> assignments;
    assignments.reserve(block.assignments.size());
    for (const core::Assignment& a : block.assignments) {
      assignments.push_back(
          core::Assignment{a.job, util::mul_checked(a.share, scale)});
    }
    out.append(block.length, std::move(assignments));
  }
  return out;
}

}  // namespace sharedres::cache
