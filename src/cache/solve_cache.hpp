// Sharded, capacity-bounded, coalescing LRU cache of solve results keyed by
// canonical instances (cache/canonical.hpp).
//
// Determinism contract (the reason the API is shaped the way it is): the
// batch pipeline promises byte-identical output — including the summary
// metrics block — across SHAREDRES_THREADS values. Every cache decision that
// can show up in that output (hit/miss classification, insertions,
// evictions, resident sizes) therefore happens in acquire(), which the
// pipeline calls from its single reader thread in input order. Worker
// threads only ever touch the entry they were handed: the producer fills it,
// waiters block on it. With all map/LRU mutations serialized on the reader,
// the counters and the final resident set are functions of the input stream
// alone — the worker interleaving cannot influence them.
//
// Coalescing: the first acquire() of a key returns a *producer* handle
// (hit() == false); every later acquire() of the same key — even while the
// producer's solve is still running — returns a *waiter* handle
// (hit() == true). wait() blocks until the producer calls fill() (value
// available) or abandons the entry (its solve threw; wait() returns nullptr
// and the caller re-solves locally so the record fails byte-identically to a
// cache-off run). Abandoned entries stay resident so the hit/miss counters
// never depend on when the producer failed. Handles pin their entry via
// shared_ptr, so eviction never invalidates an in-flight solve.
//
// No-deadlock argument (FIFO pools): the producer handle for a key is always
// created before any waiter handle for it, so with FIFO task dispatch the
// producer's task is dequeued no later than the first waiter runs; producer
// tasks never block on the cache, hence every wait() terminates.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/canonical.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"
#include "obs/registry.hpp"

namespace sharedres::cache {

/// What a producer publishes for its canonical instance. makespan and block
/// count are invariant across the whole equivalence class; the schedule
/// (canonical shares) is stored only when the consumer needs it
/// (emit-schedules runs) and scales back per record via
/// decanonicalize_schedule.
struct CacheValue {
  core::Time makespan = 0;
  /// Eq. (1) combined lower bound. Cached because it is invariant across the
  /// canonical equivalence class (resource and longest-job bounds are ratios
  /// of requirements to capacity, the volume bound never sees requirements),
  /// so recomputing it per hit would be pure waste.
  core::Time lower_bound = 0;
  std::size_t blocks = 0;
  std::optional<core::Schedule> schedule;
};

namespace detail {
struct Entry;
}

class SolveCache {
 public:
  struct Config {
    /// Maximum resident entries across all shards (≥ 1; 0 is clamped to 1).
    std::size_t capacity = 1024;
    /// Requested shard count; clamped to [1, capacity]. Capacity is split
    /// evenly across shards (earlier shards take the remainder), each with
    /// its own LRU list.
    std::size_t shards = 8;
  };

  /// All counters are decided on the acquire() thread (see file comment), so
  /// for a fixed input stream they are identical for every worker count.
  struct Stats {
    std::uint64_t hits = 0;        ///< acquire() found the key resident
    std::uint64_t misses = 0;      ///< acquire() inserted a producer entry
    std::uint64_t inserts = 0;     ///< == misses (separate for clarity)
    std::uint64_t evictions = 0;   ///< LRU entries dropped to respect capacity
    std::uint64_t abandoned = 0;   ///< producer handles destroyed unfilled
    std::uint64_t value_bytes = 0; ///< Σ approximate bytes of filled values
    std::int64_t resident_bytes = 0;  ///< keys + entry overhead now resident
    std::size_t resident_entries = 0;
  };

  /// The capability returned by acquire(). Exactly one handle per acquire;
  /// move-only. A producer handle (hit() == false) MUST reach fill() or be
  /// destroyed (destruction abandons the entry, waking waiters with
  /// nullptr); calling wait() on it before fill() would self-deadlock.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& other) noexcept;
    Handle& operator=(Handle&& other) noexcept;
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle();

    /// True iff the key was already resident: this handle consumes via
    /// wait(). False iff this handle is the key's producer.
    [[nodiscard]] bool hit() const { return hit_; }

    /// Producer only: publish the value and wake all waiters. Call at most
    /// once.
    void fill(CacheValue value);

    /// Waiter only: block until the value is published or the producer
    /// abandons; returns the published value, or nullptr on abandonment
    /// (caller solves locally). The pointer stays valid while this handle
    /// lives.
    [[nodiscard]] const CacheValue* wait() const;

   private:
    friend class SolveCache;
    Handle(std::shared_ptr<detail::Entry> entry, bool hit, SolveCache* owner);

    std::shared_ptr<detail::Entry> entry_;
    bool hit_ = false;
    bool filled_ = false;
    SolveCache* owner_ = nullptr;
  };

  explicit SolveCache(const Config& config);
  ~SolveCache();
  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Look up / insert the canonical key. MUST be called from one thread, in
  /// the order that defines the deterministic contract (the batch reader
  /// calls it in input order). Verifies full key bytes behind the 128-bit
  /// hash before declaring a hit.
  [[nodiscard]] Handle acquire(const CanonicalForm& form);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t shard_count() const;

  /// Add the cache.* metric block (all Det::kDeterministic — see Stats) to
  /// `registry`. The batch pipeline calls this once, after the pool drains,
  /// on its merged registry.
  void export_metrics(obs::Registry& registry) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sharedres::cache
