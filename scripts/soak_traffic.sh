# Closed-loop sustained-traffic soak: the loadgen driving the real daemon
# over its unix socket (DESIGN.md §14, EXPERIMENTS.md E16).
#
# Rounds, each a fresh daemon + one or more `sharedres_cli loadgen` runs:
#
#  1. sustained  — paced poisson traffic with interleaved {"status":true}
#     probes against a cached daemon; everything must come back ok.
#  2. repeat     — the same seed replayed against the same daemon: the
#     request stream is byte-identical (loadgen determinism through the
#     real binary) and every repeated instance hits the solve cache.
#  3. shed-heavy — unpaced bursty overload into a tiny queue with shedding
#     on; responses classify as ok or shed, nothing is lost.
#  4. deadline   — per-request step budgets too small to finish; every
#     response is a typed deadline_exceeded error, not a hang or a crash.
#
# The contract asserted on every round:
#  * the daemon never crashes (TERM drain exits 0 with a summary line);
#  * the loadgen exits 0 — its own gate that EXACTLY one typed response
#    arrived per request sent (probes included);
#  * response classifications sum to the requests sent.
#
# Run by ctest as traffic_soak (label tier1_slow) and by the CI
# traffic-smoke job. Budget: ~15s.
#
#   usage: soak_traffic.sh <path-to-sharedres_cli>
set -u

CLI=${1:?usage: soak_traffic.sh <path-to-sharedres_cli>}
TMP=$(mktemp -d) || exit 1
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# report_field <report.json> <field> — print one numeric/bool field.
report_field() {
  python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))[sys.argv[2]])' \
    "$1" "$2" || fail "unreadable loadgen report $1"
}

start_daemon() {  # start_daemon <name> [serve flags...]
  name=$1; shift
  SOCK="$TMP/$name.sock"
  "$CLI" serve --socket="$SOCK" "$@" \
    > "$TMP/$name.out" 2> "$TMP/$name.err" &
  DAEMON=$!
  for _ in $(seq 50); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  fail "$name: socket never appeared"
}

stop_daemon() {  # stop_daemon <name>
  name=$1
  kill -TERM "$DAEMON" 2> /dev/null
  wait "$DAEMON" || fail "$name: daemon crashed or exited non-zero on drain"
  tail -n 1 "$TMP/$name.out" | grep -q '"summary":true' \
    || fail "$name: no summary line after drain"
  tail -n 1 "$TMP/$name.out" | grep -q '"drained":true' \
    || fail "$name: summary does not report a clean drain"
}

# ---- round 1+2: sustained paced traffic, then a byte-identical repeat ------
start_daemon sustained --threads=2 --queue=64 --cache
"$CLI" loadgen --socket="$SOCK" --requests=200 --rate=2000 --process=poisson \
  --jobs=16 --seed=11 --window=32 --status-every=20 \
  --emit-stream="$TMP/stream_a.ndjson" --out="$TMP/round1.json" > /dev/null \
  || fail "sustained: loadgen lost or duplicated responses"
[ "$(report_field "$TMP/round1.json" ok)" = 200 ] \
  || fail "sustained: not every request came back ok"
[ "$(report_field "$TMP/round1.json" status_responses)" = 10 ] \
  || fail "sustained: status probes were not all answered"

"$CLI" loadgen --socket="$SOCK" --requests=200 --rate=2000 --process=poisson \
  --jobs=16 --seed=11 --window=32 \
  --emit-stream="$TMP/stream_b.ndjson" --out="$TMP/round2.json" > /dev/null \
  || fail "repeat: loadgen lost or duplicated responses"
cmp -s "$TMP/stream_a.ndjson" "$TMP/stream_b.ndjson" \
  || fail "repeat: same seed did not reproduce a byte-identical stream"
stop_daemon sustained
tail -n 1 "$TMP/sustained.out" | grep -q '"cache.hits":200' \
  || fail "repeat: second pass did not hit the solve cache 200 times"

# ---- round 3: shed-heavy bursty overload -----------------------------------
start_daemon shed --threads=1 --queue=4 --shed-high-water=4
"$CLI" loadgen --socket="$SOCK" --requests=300 --process=bursty --jobs=30 \
  --seed=5 --window=64 --out="$TMP/round3.json" > /dev/null \
  || fail "shed: loadgen lost or duplicated responses"
OK=$(report_field "$TMP/round3.json" ok)
SHED=$(report_field "$TMP/round3.json" shed)
ERRORS=$(report_field "$TMP/round3.json" errors)
[ "$ERRORS" = 0 ] || fail "shed: $ERRORS untyped errors"
[ $((OK + SHED)) -eq 300 ] \
  || fail "shed: ok ($OK) + shed ($SHED) != 300 requests"
stop_daemon shed

# ---- round 4: per-request deadlines under load ------------------------------
start_daemon deadline --threads=2 --queue=32
"$CLI" loadgen --socket="$SOCK" --requests=60 --process=diurnal --jobs=40 \
  --seed=3 --deadline-steps=1 --window=16 --out="$TMP/round4.json" \
  > /dev/null || fail "deadline: loadgen lost or duplicated responses"
DL=$(report_field "$TMP/round4.json" deadline_exceeded)
OK=$(report_field "$TMP/round4.json" ok)
[ "$DL" -gt 0 ] || fail "deadline: no request hit its 1-step budget"
[ $((OK + DL)) -eq 60 ] \
  || fail "deadline: ok ($OK) + deadline ($DL) != 60 requests"
stop_daemon deadline

echo "PASS: traffic soak (sustained+probes, cached repeat, shed-heavy, deadlines)"
