# Proves the service determinism contract through the real binary:
#
#  1. `sharedres_cli serve` (stdio, shedding off) output is byte-identical
#     across SHAREDRES_THREADS=1/2/8 and across reruns — responses AND the
#     summary line (merged per-worker metrics are thread-count-invariant).
#  2. The served response body equals `sharedres_cli batch` on the same
#     stream byte for byte (the service routes through the same per-record
#     solver), only the summary line differs.
#  3. Socket mode: each connection's responses are byte-identical to a
#     stdio run of that connection's sub-stream, regardless of how the two
#     connections' arrivals interleave (two different interleavings
#     compared).
#  4. Restart replay: a journaled run re-served with --replay reproduces a
#     byte-identical response prefix without re-appending to the journal.
#  5. Solve cache: `serve --cache` on a duplicate-heavy stream emits a
#     response body byte-identical to the cache-off run while actually
#     serving repeats from the cache.
#
# Shedding stays OFF (--shed-high-water=0) throughout: shed decisions
# depend on queue timing and are exactly what this contract excludes.
#
# Run by ctest as cli_service_determinism (label tier1).
#
#   usage: test_service_determinism.sh <path-to-sharedres_cli>
set -u

CLI=${1:?usage: test_service_determinism.sh <path-to-sharedres_cli>}
TMP=$(mktemp -d) || exit 1
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

COUNT=30
"$CLI" gen --family=uniform --machines=6 --jobs=60 --seed=7 \
  --count=$COUNT --format=ndjson --out="$TMP/stream.ndjson" > /dev/null \
  || fail "gen --format=ndjson exited $?"

serve() {  # serve <threads> <out> [extra flags...]
  threads=$1; out=$2; shift 2
  SHAREDRES_THREADS=$threads "$CLI" serve --emit-schedules "$@" \
    < "$TMP/stream.ndjson" > "$out" || fail "serve (threads=$threads) exited $?"
}

# ---- 1: byte identity across thread counts and reruns ----------------------
serve 1 "$TMP/t1.ndjson"
serve 2 "$TMP/t2.ndjson"
serve 8 "$TMP/t8.ndjson"
serve 8 "$TMP/t8_again.ndjson"

cmp -s "$TMP/t1.ndjson" "$TMP/t2.ndjson" \
  || fail "serve output differs between SHAREDRES_THREADS=1 and 2"
cmp -s "$TMP/t1.ndjson" "$TMP/t8.ndjson" \
  || fail "serve output differs between SHAREDRES_THREADS=1 and 8"
cmp -s "$TMP/t8.ndjson" "$TMP/t8_again.ndjson" \
  || fail "serve output differs between identical reruns"

# ---- 2: response body identical to the batch pipeline ----------------------
SHAREDRES_THREADS=4 "$CLI" batch --in="$TMP/stream.ndjson" --emit-schedules \
  > "$TMP/batch.ndjson" || fail "batch exited $?"
sed '$d' "$TMP/t1.ndjson" > "$TMP/serve_body.ndjson"
sed '$d' "$TMP/batch.ndjson" > "$TMP/batch_body.ndjson"
cmp -s "$TMP/serve_body.ndjson" "$TMP/batch_body.ndjson" \
  || fail "serve response body differs from batch output on the same stream"
tail -n 1 "$TMP/t1.ndjson" | grep -q '"service":true' \
  || fail "serve summary line missing \"service\":true"

# ---- 3: socket mode, per-connection identity under interleaving ------------
# Two clients split the stream (even/odd lines). A python3 client drives the
# socket with two different arrival interleavings; each connection's
# responses must equal a stdio serve of its own sub-stream both times.
awk 'NR % 2 == 1' "$TMP/stream.ndjson" > "$TMP/even.ndjson"   # lines 1,3,..
awk 'NR % 2 == 0' "$TMP/stream.ndjson" > "$TMP/odd.ndjson"

SHAREDRES_THREADS=2 "$CLI" serve --emit-schedules < "$TMP/even.ndjson" \
  > "$TMP/even_ref_full.ndjson" || fail "serve (even ref) exited $?"
SHAREDRES_THREADS=2 "$CLI" serve --emit-schedules < "$TMP/odd.ndjson" \
  > "$TMP/odd_ref_full.ndjson" || fail "serve (odd ref) exited $?"
sed '$d' "$TMP/even_ref_full.ndjson" > "$TMP/even_ref.ndjson"
sed '$d' "$TMP/odd_ref_full.ndjson" > "$TMP/odd_ref.ndjson"

socket_round() {  # socket_round <mode: lockstep|bursts> <outdir>
  mode=$1; outdir=$2
  mkdir -p "$outdir"
  SOCK="$TMP/sock.$mode"
  SHAREDRES_THREADS=2 "$CLI" serve --socket="$SOCK" --emit-schedules \
    > "$outdir/server.out" 2> "$outdir/server.err" &
  SRV=$!
  python3 - "$SOCK" "$TMP/even.ndjson" "$TMP/odd.ndjson" \
    "$outdir/even.resp" "$outdir/odd.resp" "$mode" <<'PYEOF' \
    || fail "socket client ($mode) failed"
import socket, sys, threading, time

sock_path, even_in, odd_in, even_out, odd_out, mode = sys.argv[1:7]

for _ in range(100):          # wait for the listener to appear
    try:
        probe = socket.socket(socket.AF_UNIX)
        probe.connect(sock_path)
        probe.close()
        break
    except OSError:
        time.sleep(0.05)
else:
    sys.exit("socket never came up")

def lines_of(path):
    with open(path, "rb") as f:
        return [l for l in f.read().split(b"\n") if l.strip()]

def drive(in_path, out_path, chunk):
    lines = lines_of(in_path)
    conn = socket.socket(socket.AF_UNIX)
    conn.connect(sock_path)
    got = []
    buf = b""
    def reader():
        nonlocal buf
        while True:
            data = conn.recv(65536)
            if not data:
                break
            buf += data
    t = threading.Thread(target=reader)
    t.start()
    for i in range(0, len(lines), chunk):
        conn.sendall(b"".join(l + b"\n" for l in lines[i:i + chunk]))
        time.sleep(0.01)       # let the other client's burst interleave
    conn.shutdown(socket.SHUT_WR)
    t.join()
    while buf.count(b"\n") < len(lines):
        sys.exit("connection closed before all responses arrived")
    with open(out_path, "wb") as f:
        f.write(buf)

chunk = 1 if mode == "lockstep" else 7
ta = threading.Thread(target=drive, args=(even_in, even_out, chunk))
tb = threading.Thread(target=drive, args=(odd_in, odd_out, chunk))
ta.start(); tb.start(); ta.join(); tb.join()
PYEOF
  kill -TERM "$SRV" 2> /dev/null
  wait "$SRV" || fail "socket server ($mode) exited $?"
  cmp -s "$outdir/even.resp" "$TMP/even_ref.ndjson" \
    || fail "socket ($mode): even connection's responses differ from stdio run"
  cmp -s "$outdir/odd.resp" "$TMP/odd_ref.ndjson" \
    || fail "socket ($mode): odd connection's responses differ from stdio run"
}

socket_round lockstep "$TMP/round1"
socket_round bursts "$TMP/round2"

# ---- 4: restart replay from the journal ------------------------------------
SHAREDRES_THREADS=2 "$CLI" serve --emit-schedules --journal="$TMP/journal" \
  < "$TMP/stream.ndjson" > "$TMP/life1.ndjson" || fail "journaled serve exited $?"
cmp -s "$TMP/journal" "$TMP/stream.ndjson" \
  || fail "journal does not hold the admitted input lines verbatim"

SHAREDRES_THREADS=8 "$CLI" serve --emit-schedules --journal="$TMP/journal" \
  --replay < /dev/null > "$TMP/life2.ndjson" || fail "replay serve exited $?"
sed '$d' "$TMP/life1.ndjson" > "$TMP/life1_body.ndjson"
sed '$d' "$TMP/life2.ndjson" > "$TMP/life2_body.ndjson"
cmp -s "$TMP/life1_body.ndjson" "$TMP/life2_body.ndjson" \
  || fail "replayed responses are not byte-identical to the first life"
cmp -s "$TMP/journal" "$TMP/stream.ndjson" \
  || fail "replay re-appended to the journal"
tail -n 1 "$TMP/life2.ndjson" | grep -q "\"replayed\":$COUNT" \
  || fail "replay summary does not report replayed:$COUNT"

# ---- 5: cached and uncached served bytes are identical ----------------------
# The stream tripled, so two of every three records are repeat instances.
cat "$TMP/stream.ndjson" "$TMP/stream.ndjson" "$TMP/stream.ndjson" \
  > "$TMP/dup.ndjson"
SHAREDRES_THREADS=4 "$CLI" serve --emit-schedules < "$TMP/dup.ndjson" \
  > "$TMP/dup_off.ndjson" || fail "serve (cache off) exited $?"
SHAREDRES_THREADS=4 "$CLI" serve --emit-schedules --cache=64 \
  < "$TMP/dup.ndjson" > "$TMP/dup_on.ndjson" || fail "serve --cache exited $?"
sed '$d' "$TMP/dup_off.ndjson" > "$TMP/dup_off_body.ndjson"
sed '$d' "$TMP/dup_on.ndjson" > "$TMP/dup_on_body.ndjson"
cmp -s "$TMP/dup_off_body.ndjson" "$TMP/dup_on_body.ndjson" \
  || fail "serve --cache response body differs from the cache-off run"
tail -n 1 "$TMP/dup_on.ndjson" | grep -q "\"cache.hits\":$((COUNT * 2))" \
  || fail "serve --cache did not hit the cache on every repeated record"

echo "PASS: service determinism (threads, batch parity, socket interleavings, replay, cache)"
