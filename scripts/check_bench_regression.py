#!/usr/bin/env python3
"""Compare BENCH_<name>.json artifacts against a baseline directory.

Every bench binary (see bench/harness.hpp) writes a machine-readable
BENCH_<name>.json next to its table output. This script validates those
artifacts against the schema and flags timing regressions relative to a
baseline set of the same files.

Matching is by (file name, timing label). For each matched timing the
comparison uses seconds_min — the least-noise estimate of the true cost —
and flags a regression when BOTH hold:

  current_min > threshold * baseline_min      (relative blow-up), and
  current_min > min_seconds                   (absolute noise floor).

The absolute floor makes the check portable across machines: sub-floor
cells (the CI smoke sizes) can never flag on scheduler jitter, while a
complexity regression — e.g. the unit engine's window walk going quadratic
again on the front-accumulation workload, a >100x blow-up — lands far above
both gates on any hardware.

Schema validation (always on, regression gates or not):
  * schema_version == 1 and all top-level keys present,
  * every timing has min <= median <= max and min <= mean <= max,
  * timings include the harness's "total" entry.

Deterministic-metrics gate: when both artifacts embed a "metrics" block
(bench/harness.cpp, schema_version 1 with obs enabled), the
metrics["deterministic"] sub-object is compared for EXACT equality. These
counters are structural facts about the algorithms (steps taken, windows
rebuilt, blocks emitted, ...) and are bit-identical across thread counts
and machines by contract — any drift means the algorithm changed, which is
a hard failure listing every drifted key. An artifact without a metrics
block (pre-obs baseline) or with obs compiled out only warns, as does a
current run whose bench invocation (timing labels / rep counts) differs
from the baseline's: counters scale with the work performed, so they are
only compared between identical invocations.

Cross-run equality gate (--equal-across): given two or more directories of
artifacts from the SAME bench invocation at DIFFERENT SHAREDRES_THREADS
values, the deterministic metric blocks must be EXACTLY equal pairwise —
the determinism contract of the parallel engine paths (DESIGN.md §12) made
executable. Any key differing between two thread counts is a hard failure.
Timings are of course not compared in this mode.

Exit status: 0 = all checks passed, 1 = regression or schema violation,
2 = usage/IO error (missing directories, unreadable or invalid files).
Every IO failure is a one-line diagnostic on stderr, never a traceback.

Usage:
  check_bench_regression.py --baseline DIR --current DIR
                            [--threshold X] [--min-seconds S] [--strict]
                            [--allow-missing-baseline]
  check_bench_regression.py --equal-across DIR DIR [DIR ...]

  --threshold X    relative gate, default 3.0
  --min-seconds S  absolute gate in seconds, default 0.05
  --strict         also fail when a baseline timing label is missing from
                   the current run (default: warn)
  --allow-missing-baseline
                   a missing or empty baseline directory downgrades to a
                   warning: the current artifacts are still schema-validated,
                   but no regression comparison runs (first CI run on a new
                   branch, or a fresh machine without recorded baselines)
  --equal-across   compare deterministic metric blocks for exact equality
                   across per-thread-count runs instead of (or in addition
                   to) the baseline comparison
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

SCHEMA_KEYS = ("schema_version", "name", "experiment", "threads", "tables",
               "timings")
TIMING_KEYS = ("label", "reps", "seconds_min", "seconds_median",
               "seconds_mean", "seconds_max", "items_per_second")


def load_artifacts(directory: pathlib.Path) -> dict[str, dict]:
    """Read every BENCH_*.json in `directory`, keyed by file name."""
    artifacts = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                artifacts[path.name] = json.load(fh)
        except OSError as exc:
            print(f"error: cannot read {path}: {exc.strerror or exc}",
                  file=sys.stderr)
            raise SystemExit(2)
        except json.JSONDecodeError as exc:
            print(f"error: {path}: invalid JSON: {exc}", file=sys.stderr)
            raise SystemExit(2)
    return artifacts


def validate_schema(name: str, doc: dict, errors: list[str]) -> None:
    for key in SCHEMA_KEYS:
        if key not in doc:
            errors.append(f"{name}: missing top-level key '{key}'")
            return
    if doc["schema_version"] != 1:
        errors.append(f"{name}: unsupported schema_version "
                      f"{doc['schema_version']!r}")
        return
    labels = set()
    for i, timing in enumerate(doc["timings"]):
        for key in TIMING_KEYS:
            if key not in timing:
                errors.append(f"{name}: timings[{i}] missing '{key}'")
                return
        lo, med = timing["seconds_min"], timing["seconds_median"]
        mean, hi = timing["seconds_mean"], timing["seconds_max"]
        if not (lo <= med <= hi and lo <= mean <= hi):
            errors.append(
                f"{name}: timings[{i}] ('{timing['label']}') not monotone: "
                f"min={lo} median={med} mean={mean} max={hi}")
        labels.add(timing["label"])
    if "total" not in labels:
        errors.append(f"{name}: no 'total' timing entry")
    for i, table in enumerate(doc["tables"]):
        for key in ("title", "columns", "rows"):
            if key not in table:
                errors.append(f"{name}: tables[{i}] missing '{key}'")
                return
        width = len(table["columns"])
        for j, row in enumerate(table["rows"]):
            if len(row) != width:
                errors.append(f"{name}: tables[{i}] row {j} has {len(row)} "
                              f"cells, header has {width}")


def flatten_metrics(block: dict) -> dict[str, object]:
    """Flatten a deterministic metrics block into comparable leaf values."""
    flat: dict[str, object] = {}
    for kind in ("counters", "gauges"):
        for key, value in block.get(kind, {}).items():
            flat[f"{kind}.{key}"] = value
    for key, hist in block.get("histograms", {}).items():
        for field in ("bounds", "counts", "count", "sum"):
            flat[f"histograms.{key}.{field}"] = hist.get(field)
    return flat


def compare_metrics(name: str, baseline: dict, current: dict,
                    errors: list[str], warnings: list[str]) -> None:
    base_m, cur_m = baseline.get("metrics"), current.get("metrics")
    if base_m is None or cur_m is None:
        warnings.append(f"{name}: no metrics block in "
                        f"{'baseline' if base_m is None else 'current'} "
                        f"artifact; deterministic-metrics gate skipped")
        return
    if not (base_m.get("obs_enabled") and cur_m.get("obs_enabled")):
        warnings.append(f"{name}: observability compiled out; "
                        f"deterministic-metrics gate skipped")
        return
    # Counters accumulate over everything the binary executed, so they are
    # only comparable when the two runs performed the same work: identical
    # timing labels (sweep sizes) and identical rep counts. A smoke run with
    # different --reps/--max-n is a legitimate use of this script and must
    # not produce false metric regressions.
    base_inv = {t["label"]: t["reps"] for t in baseline.get("timings", [])}
    cur_inv = {t["label"]: t["reps"] for t in current.get("timings", [])}
    if base_inv != cur_inv:
        warnings.append(
            f"{name}: bench invocation differs from baseline (timing "
            f"labels/reps mismatch); deterministic-metrics gate skipped")
        return
    base_flat = flatten_metrics(base_m.get("deterministic", {}))
    cur_flat = flatten_metrics(cur_m.get("deterministic", {}))
    for key in sorted(base_flat.keys() | cur_flat.keys()):
        base_v = base_flat.get(key)
        cur_v = cur_flat.get(key)
        if base_v == cur_v:
            continue
        if base_v is None:
            # New instrumentation sites appear when code grows; only a
            # changed or vanished value indicates an algorithm change.
            warnings.append(f"{name}: new deterministic metric '{key}' "
                            f"(= {cur_v}) not in baseline")
        else:
            errors.append(f"{name}: deterministic metric '{key}' drifted: "
                          f"baseline {base_v} -> current {cur_v}")


def compare(name: str, baseline: dict, current: dict, threshold: float,
            min_seconds: float, strict: bool, errors: list[str],
            warnings: list[str]) -> None:
    base_timings = {t["label"]: t for t in baseline["timings"]}
    cur_timings = {t["label"]: t for t in current["timings"]}
    for label, base in base_timings.items():
        if label == "total":
            continue  # whole-binary wall time depends on the sweep config
        cur = cur_timings.get(label)
        if cur is None:
            msg = f"{name}: baseline timing '{label}' missing from current run"
            (errors if strict else warnings).append(msg)
            continue
        base_min, cur_min = base["seconds_min"], cur["seconds_min"]
        if cur_min > threshold * base_min and cur_min > min_seconds:
            errors.append(
                f"{name}: '{label}' regressed {cur_min / max(base_min, 1e-12):.1f}x "
                f"(baseline {base_min:.6f}s -> current {cur_min:.6f}s, "
                f"threshold {threshold}x, floor {min_seconds}s)")


def compare_equal_across(dirs: list[pathlib.Path], errors: list[str],
                         warnings: list[str]) -> int:
    """Exact pairwise equality of deterministic metrics across runs.

    The first directory is the reference; every other directory must hold
    the same artifact set, produced by the same invocation (labels/reps),
    with an identical deterministic metrics block. Returns the number of
    artifacts checked in the reference set.
    """
    loaded: list[tuple[pathlib.Path, dict[str, dict]]] = []
    for directory in dirs:
        if not directory.is_dir():
            print(f"error: --equal-across directory {directory} does not "
                  f"exist", file=sys.stderr)
            raise SystemExit(2)
        loaded.append((directory, load_artifacts(directory)))
    ref_dir, ref = loaded[0]
    if not ref:
        print(f"error: no BENCH_*.json files in {ref_dir}", file=sys.stderr)
        raise SystemExit(2)
    for directory, docs in loaded:
        for name, doc in docs.items():
            validate_schema(f"{directory}/{name}", doc, errors)
    for directory, docs in loaded[1:]:
        if docs.keys() != ref.keys():
            diff = sorted(set(docs) ^ set(ref))
            errors.append(f"{directory}: artifact set differs from "
                          f"{ref_dir}: {diff}")
            continue
        for name in sorted(ref):
            ref_doc, doc = ref[name], docs[name]
            ref_m, cur_m = ref_doc.get("metrics"), doc.get("metrics")
            if ref_m is None or cur_m is None or not (
                    ref_m.get("obs_enabled") and cur_m.get("obs_enabled")):
                warnings.append(f"{directory}/{name}: metrics unavailable; "
                                f"cross-run equality gate skipped")
                continue
            ref_inv = {t["label"]: t["reps"]
                       for t in ref_doc.get("timings", [])}
            cur_inv = {t["label"]: t["reps"] for t in doc.get("timings", [])}
            if ref_inv != cur_inv:
                errors.append(f"{directory}/{name}: bench invocation "
                              f"differs from {ref_dir} (timing labels/reps "
                              f"mismatch) — equality gate needs identical "
                              f"invocations")
                continue
            ref_flat = flatten_metrics(ref_m.get("deterministic", {}))
            cur_flat = flatten_metrics(cur_m.get("deterministic", {}))
            for key in sorted(ref_flat.keys() | cur_flat.keys()):
                ref_v, cur_v = ref_flat.get(key), cur_flat.get(key)
                if ref_v != cur_v:
                    errors.append(
                        f"{directory}/{name}: deterministic metric '{key}' "
                        f"differs across runs: {ref_dir} has {ref_v}, "
                        f"{directory} has {cur_v}")
    return len(ref)


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Validate and compare BENCH_*.json artifacts.")
    parser.add_argument("--baseline", type=pathlib.Path)
    parser.add_argument("--current", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=3.0)
    parser.add_argument("--min-seconds", type=float, default=0.05)
    parser.add_argument("--strict", action="store_true")
    parser.add_argument("--allow-missing-baseline", action="store_true")
    parser.add_argument("--equal-across", nargs="+", type=pathlib.Path,
                        metavar="DIR")
    args = parser.parse_args()

    if args.equal_across is not None and len(args.equal_across) < 2:
        print("error: --equal-across needs at least two directories",
              file=sys.stderr)
        return 2
    if args.equal_across is None and (args.baseline is None
                                      or args.current is None):
        print("error: --baseline and --current are required unless "
              "--equal-across is used", file=sys.stderr)
        return 2

    if args.equal_across is not None:
        errors: list[str] = []
        warnings: list[str] = []
        checked = compare_equal_across(args.equal_across, errors, warnings)
        if args.baseline is None and args.current is None:
            for msg in warnings:
                print(f"warning: {msg}")
            for msg in errors:
                print(f"REGRESSION: {msg}")
            print(f"checked {checked} artifact(s) across "
                  f"{len(args.equal_across)} run(s): {len(errors)} error(s), "
                  f"{len(warnings)} warning(s)")
            return 1 if errors else 0
        # Both modes requested: fold the equality findings into the normal
        # baseline run below.
        carried_errors, carried_warnings = errors, warnings
    else:
        carried_errors, carried_warnings = [], []

    if not args.current.is_dir():
        print(f"error: current directory {args.current} does not exist",
              file=sys.stderr)
        return 2

    baseline: dict[str, dict] = {}
    if args.baseline.is_dir():
        baseline = load_artifacts(args.baseline)
    elif not args.allow_missing_baseline:
        print(f"error: baseline directory {args.baseline} does not exist "
              f"(pass --allow-missing-baseline to schema-check only)",
              file=sys.stderr)
        return 2
    if not baseline and args.allow_missing_baseline:
        print(f"warning: no baseline artifacts under {args.baseline}; "
              f"schema-checking current run only")
    elif not baseline:
        print(f"error: no BENCH_*.json files in {args.baseline}",
              file=sys.stderr)
        return 2

    current = load_artifacts(args.current)
    if not current:
        print(f"error: no BENCH_*.json files in {args.current}",
              file=sys.stderr)
        return 2

    errors = carried_errors
    warnings = carried_warnings
    for name, doc in current.items():
        validate_schema(name, doc, errors)
    for name, doc in baseline.items():
        validate_schema(f"baseline/{name}", doc, errors)

    compared = 0
    for name, base_doc in baseline.items():
        cur_doc = current.get(name)
        if cur_doc is None:
            msg = f"{name}: present in baseline but not in current run"
            (errors if args.strict else warnings).append(msg)
            continue
        compared += 1
        compare(name, base_doc, cur_doc, args.threshold, args.min_seconds,
                args.strict, errors, warnings)
        compare_metrics(name, base_doc, cur_doc, errors, warnings)

    for msg in warnings:
        print(f"warning: {msg}")
    for msg in errors:
        print(f"REGRESSION: {msg}")
    print(f"checked {len(current)} artifact(s), compared {compared} against "
          f"baseline: {len(errors)} error(s), {len(warnings)} warning(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
