#!/usr/bin/env bash
# Regenerate every experiment table (E1–E11) into results/, both as the
# human-readable tables and as CSV. Assumes the project is built in build/.
#
#   scripts/run_experiments.sh [build-dir] [results-dir]
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-results}"
mkdir -p "$OUT"

if [[ ! -d "$BUILD/bench" ]]; then
  echo "error: $BUILD/bench not found — build first: cmake -B $BUILD -G Ninja && cmake --build $BUILD" >&2
  exit 1
fi

for bin in "$BUILD"/bench/bench_*; do
  [[ -x "$bin" && -f "$bin" ]] || continue
  name="$(basename "$bin")"
  echo "== $name"
  "$bin" | tee "$OUT/$name.txt"
  # The google-benchmark binary (E3) has its own output format; the table
  # benches also emit CSV.
  if [[ "$name" != "bench_runtime" ]]; then
    "$bin" --csv > "$OUT/$name.csv"
  fi
done

echo
echo "results written to $OUT/"
