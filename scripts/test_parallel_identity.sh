# Proves the parallel-engine identity contract through the real binary:
# `sharedres_cli solve --algorithm=unit --parallel=N` must write a schedule
# file byte-identical (cmp) to the scalar engine's, at every pinned
# SHAREDRES_THREADS value, on both a heavy-regime instance (the fast path
# applies end to end) and a front-accumulation instance (the fast path must
# bail and fall back). Run by ctest as cli_parallel_identity (label tier1).
#
#   usage: test_parallel_identity.sh <path-to-sharedres_cli>
set -u

CLI=${1:?usage: test_parallel_identity.sh <path-to-sharedres_cli>}
TMP=$(mktemp -d) || exit 1
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# gen <machines> <out>: unit-size uniform instances. At m=128 the default
# r-range keeps every window heavy (the fast path applies end to end); at
# m=4 light windows slide, so the fast path must bail and fall back.
gen() {
  "$CLI" gen --family=uniform --machines="$1" --jobs=4000 --max-size=1 \
    --seed=9 --out="$2" > /dev/null || fail "gen (m=$1) exited $?"
}

gen 128 "$TMP/heavy.txt"
gen 4 "$TMP/light.txt"

for inst in heavy light; do
  "$CLI" solve --instance="$TMP/$inst.txt" --algorithm=unit \
    --out="$TMP/$inst.scalar" > /dev/null \
    || fail "scalar solve ($inst) exited $?"
  for threads in 1 2 8; do
    SHAREDRES_THREADS=$threads "$CLI" solve --instance="$TMP/$inst.txt" \
      --algorithm=unit --parallel=$threads \
      --out="$TMP/$inst.par$threads" > /dev/null \
      || fail "parallel solve ($inst, threads=$threads) exited $?"
    cmp -s "$TMP/$inst.scalar" "$TMP/$inst.par$threads" \
      || fail "schedule differs: $inst scalar vs --parallel=$threads"
  done
done

# Flag contract: --parallel with a non-unit algorithm is a usage error.
"$CLI" solve --instance="$TMP/heavy.txt" --algorithm=window --parallel=2 \
  > /dev/null 2>&1
[ $? -eq 2 ] || fail "--parallel with --algorithm=window must exit 2"

echo "OK: parallel schedules byte-identical to scalar across thread counts"
