# Proves the observability determinism contract through the real binary:
# `sharedres_cli ... --metrics-json` must emit a byte-identical
# "deterministic" block regardless of SHAREDRES_THREADS, and identical again
# on a rerun. Run by ctest as cli_metrics_determinism (label tier1).
#
#   usage: test_metrics_determinism.sh <path-to-sharedres_cli>
#
# Uses only sh + python3 (for JSON field extraction), both required by the
# existing scripts/ tooling.
set -u

CLI=${1:?usage: test_metrics_determinism.sh <path-to-sharedres_cli>}
TMP=$(mktemp -d) || exit 1
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

run() {  # run <threads> <out.json>
  SHAREDRES_THREADS=$1 "$CLI" solve --instance="$TMP/inst.txt" \
    --metrics-json="$2" > /dev/null || fail "solve (threads=$1) exited $?"
}

det_block() {  # det_block <metrics.json> <out.txt>
  python3 - "$1" "$2" <<'EOF' || exit 1
import json, sys
doc = json.load(open(sys.argv[1]))
with open(sys.argv[2], "w") as out:
    json.dump(doc["deterministic"], out, indent=1, sort_keys=True)
EOF
}

"$CLI" gen --family=bimodal --machines=6 --jobs=400 --seed=42 \
  --out="$TMP/inst.txt" > /dev/null || fail "gen exited $?"

run 1 "$TMP/m1.json"
run 8 "$TMP/m8.json"
run 8 "$TMP/m8_again.json"

det_block "$TMP/m1.json" "$TMP/d1.txt"
det_block "$TMP/m8.json" "$TMP/d8.txt"
det_block "$TMP/m8_again.json" "$TMP/d8_again.txt"

cmp -s "$TMP/d1.txt" "$TMP/d8.txt" \
  || fail "deterministic block differs between SHAREDRES_THREADS=1 and 8"
cmp -s "$TMP/d8.txt" "$TMP/d8_again.txt" \
  || fail "deterministic block differs between identical reruns"

# The block must be non-trivial when instrumentation is compiled in; with
# -DSHAREDRES_OBS=OFF an empty catalog is the documented behavior.
python3 - "$TMP/m1.json" <<'EOF' || exit 1
import json, sys
doc = json.load(open(sys.argv[1]))
counters = doc["deterministic"]["counters"]
if doc["obs_enabled"]:
    for key in ("engine.sos.steps", "io.instances_read", "validator.runs"):
        if key not in counters:
            sys.exit(f"FAIL: obs enabled but counter '{key}' missing")
elif counters:
    sys.exit("FAIL: obs disabled but deterministic counters present")
EOF

echo "PASS: deterministic metrics identical across threads and reruns"
