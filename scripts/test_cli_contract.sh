#!/bin/sh
# Exit-code contract test for sharedres_cli:
#   0 ok | 1 infeasible | 2 usage | 3 input error
# plus the `validate --json` output shape. Run by ctest as
# `test_cli_contract.sh <path-to-sharedres_cli>`; any mismatch fails the test.
set -u

CLI=$1
tmp=$(mktemp -d) || exit 1
trap 'rm -rf "$tmp"' EXIT
fail=0

expect() { # description expected_exit actual_exit
  if [ "$2" -ne "$3" ]; then
    echo "FAIL: $1: expected exit $2, got $3"
    fail=1
  else
    echo "ok: $1 (exit $3)"
  fi
}

# ---- usage errors -> 2 -----------------------------------------------------
"$CLI" >/dev/null 2>&1
expect "no command" 2 $?

"$CLI" frobnicate >/dev/null 2>&1
expect "unknown command" 2 $?

"$CLI" solve >/dev/null 2>&1
expect "solve without --instance" 2 $?

"$CLI" validate --instance=only.txt >/dev/null 2>&1
expect "validate without --schedule" 2 $?

"$CLI" gen --machines=abc >/dev/null 2>&1
expect "non-numeric --machines" 2 $?

"$CLI" gen --machines=99999999999999999999 >/dev/null 2>&1
expect "overflowing --machines" 2 $?

"$CLI" solve --instance=x --algorithm=nope >/dev/null 2>&1
expect "unknown --algorithm" 2 $?

# ---- input errors -> 3 -----------------------------------------------------
"$CLI" solve --instance="$tmp/definitely-missing.txt" >/dev/null 2>&1
expect "missing instance file" 3 $?

printf 'not a sharedres file\n' > "$tmp/garbage.txt"
"$CLI" solve --instance="$tmp/garbage.txt" >/dev/null 2>&1
expect "malformed instance file" 3 $?

printf '# sharedres instance v1\nmachines 2\ncapacity 99999999999999999999\njobs 0\n' \
  > "$tmp/overflow.txt"
"$CLI" bounds --instance="$tmp/overflow.txt" >/dev/null 2>&1
expect "out-of-range number in instance" 3 $?

printf '# sharedres instance v1\nmachines 0\ncapacity 10\njobs 0\n' \
  > "$tmp/badsem.txt"
"$CLI" bounds --instance="$tmp/badsem.txt" >/dev/null 2>&1
expect "semantically invalid instance" 3 $?

# ---- ok -> 0 ---------------------------------------------------------------
"$CLI" gen --family=uniform --machines=4 --jobs=20 --seed=7 \
  --out="$tmp/inst.txt" >/dev/null 2>&1
expect "gen" 0 $?

"$CLI" solve --instance="$tmp/inst.txt" --out="$tmp/sched.txt" >/dev/null 2>&1
expect "solve" 0 $?

"$CLI" validate --instance="$tmp/inst.txt" --schedule="$tmp/sched.txt" \
  >/dev/null 2>&1
expect "validate feasible" 0 $?

# The improved portfolio (DESIGN.md §15) must honor the same contract: a
# clean solve exits 0, its schedule validates, and its makespan never
# exceeds the window scheduler's (portfolio domination).
"$CLI" solve --instance="$tmp/inst.txt" --algorithm=improved \
  --out="$tmp/sched-improved.txt" > "$tmp/solve-improved.out" 2>&1
expect "solve --algorithm=improved" 0 $?

"$CLI" validate --instance="$tmp/inst.txt" \
  --schedule="$tmp/sched-improved.txt" >/dev/null 2>&1
expect "validate improved schedule" 0 $?

improved_mk=$(sed -n 's/^makespan: *//p' "$tmp/solve-improved.out")
window_mk=$("$CLI" solve --instance="$tmp/inst.txt" --algorithm=window 2>&1 |
  sed -n 's/^makespan: *//p')
if [ -n "$improved_mk" ] && [ -n "$window_mk" ] &&
   [ "$improved_mk" -le "$window_mk" ]; then
  echo "ok: improved makespan $improved_mk <= window $window_mk"
else
  echo "FAIL: improved makespan '$improved_mk' vs window '$window_mk'"
  fail=1
fi

# ---- d-resource generalization (DESIGN.md §16) -----------------------------
"$CLI" gen --resources=0 >/dev/null 2>&1
expect "gen --resources=0" 2 $?

"$CLI" gen --resources=9 >/dev/null 2>&1
expect "gen --resources above kMaxResources" 2 $?

"$CLI" gen --family=correlated --resources=2 --machines=4 --jobs=16 --seed=5 \
  --out="$tmp/inst-d2.txt" >/dev/null 2>&1
expect "gen --resources=2" 0 $?
grep -q '^# sharedres instance v2$' "$tmp/inst-d2.txt" || {
  echo 'FAIL: d=2 instance file lacks the v2 header'
  fail=1
}

"$CLI" solve --instance="$tmp/inst-d2.txt" --algorithm=multires \
  --out="$tmp/sched-d2.txt" >/dev/null 2>&1
expect "solve --algorithm=multires (d=2)" 0 $?

"$CLI" validate --instance="$tmp/inst-d2.txt" --schedule="$tmp/sched-d2.txt" \
  >/dev/null 2>&1
expect "validate multires schedule" 0 $?

# d=1 is a conservative extension: the multires facade delegates to the
# window scheduler, so the makespans must be identical.
multires_mk=$("$CLI" solve --instance="$tmp/inst.txt" --algorithm=multires \
  2>&1 | sed -n 's/^makespan: *//p')
if [ -n "$multires_mk" ] && [ "$multires_mk" = "$window_mk" ]; then
  echo "ok: multires d=1 makespan $multires_mk == window $window_mk"
else
  echo "FAIL: multires d=1 makespan '$multires_mk' vs window '$window_mk'"
  fail=1
fi

# Rigid d>1 scheduling rejects a job whose secondary requirement exceeds
# that axis's capacity: typed input error, not a crash.
printf '# sharedres instance v2\nmachines 2\nresources 2\ncapacity 10 4\njobs 1\njob 2 3 5\n' \
  > "$tmp/oversize-d2.txt"
"$CLI" solve --instance="$tmp/oversize-d2.txt" --algorithm=multires \
  >/dev/null 2>&1
expect "solve multires oversized secondary requirement" 3 $?

# --parallel stays a unit-engine-only flag.
"$CLI" solve --instance="$tmp/inst.txt" --algorithm=improved --parallel=2 \
  >/dev/null 2>&1
expect "solve improved rejects --parallel" 2 $?

"$CLI" validate --instance="$tmp/inst.txt" --schedule="$tmp/sched.txt" \
  --json > "$tmp/ok.json" 2>/dev/null
expect "validate feasible --json" 0 $?
grep -q '"ok": true' "$tmp/ok.json" || {
  echo 'FAIL: feasible --json output lacks "ok": true'
  fail=1
}
grep -q '"makespan"' "$tmp/ok.json" || {
  echo 'FAIL: feasible --json output lacks "makespan"'
  fail=1
}

# ---- infeasible -> 1 -------------------------------------------------------
printf '# sharedres instance v1\nmachines 2\ncapacity 10\njobs 1\njob 2 4\n' \
  > "$tmp/one.txt"
printf '# sharedres schedule v1\nblocks 1\nblock 1 1 0:6\n' \
  > "$tmp/bad-sched.txt"
"$CLI" validate --instance="$tmp/one.txt" --schedule="$tmp/bad-sched.txt" \
  >/dev/null 2>&1
expect "validate infeasible" 1 $?

"$CLI" validate --instance="$tmp/one.txt" --schedule="$tmp/bad-sched.txt" \
  --json > "$tmp/bad.json" 2>/dev/null
expect "validate infeasible --json" 1 $?
grep -q '"ok": false' "$tmp/bad.json" || {
  echo 'FAIL: infeasible --json output lacks "ok": false'
  fail=1
}
grep -q '"code": "share_above_requirement"' "$tmp/bad.json" || {
  echo 'FAIL: infeasible --json output lacks the violation code'
  fail=1
}

# ---- batch command ---------------------------------------------------------
"$CLI" batch >/dev/null 2>&1
expect "batch without --in/--dir" 2 $?

"$CLI" batch --in=a --dir=b >/dev/null 2>&1
expect "batch with both --in and --dir" 2 $?

"$CLI" batch --in=x.ndjson --algorithm=nope >/dev/null 2>&1
expect "batch unknown --algorithm" 2 $?

"$CLI" batch --in=x.ndjson --threads=0 >/dev/null 2>&1
expect "batch --threads=0" 2 $?

"$CLI" batch --in="$tmp/definitely-missing.ndjson" >/dev/null 2>&1
expect "batch missing input stream" 3 $?

"$CLI" batch --dir="$tmp/definitely-missing-dir" >/dev/null 2>&1
expect "batch missing input directory" 3 $?

"$CLI" gen --family=uniform --machines=4 --jobs=10 --seed=3 --count=5 \
  --format=ndjson --out="$tmp/stream.ndjson" >/dev/null 2>&1
expect "gen --format=ndjson" 0 $?

"$CLI" batch --in="$tmp/stream.ndjson" > "$tmp/results.ndjson" 2>/dev/null
expect "batch all records ok" 0 $?
grep -q '"summary":true,"records":5,"ok":5,"failed":0' "$tmp/results.ndjson" || {
  echo 'FAIL: batch summary line lacks the expected counts'
  fail=1
}

"$CLI" batch --in="$tmp/stream.ndjson" --algorithm=improved \
  > "$tmp/results-improved.ndjson" 2>/dev/null
expect "batch --algorithm=improved all records ok" 0 $?
grep -q '"summary":true,"records":5,"ok":5,"failed":0' \
  "$tmp/results-improved.ndjson" || {
  echo 'FAIL: improved batch summary line lacks the expected counts'
  fail=1
}
grep -q '"algorithm":"improved"' "$tmp/results-improved.ndjson" || {
  echo 'FAIL: improved batch records lack "algorithm":"improved"'
  fail=1
}

# A malformed record mid-stream must yield a typed per-record error line and
# exit 1 — the remaining records still run.
printf '{"machines":0,"capacity":1,"jobs":[]}\n' >> "$tmp/stream.ndjson"
"$CLI" gen --family=uniform --machines=4 --jobs=10 --seed=100 --count=1 \
  --format=ndjson >> "$tmp/stream.ndjson" 2>/dev/null
"$CLI" batch --in="$tmp/stream.ndjson" > "$tmp/results2.ndjson" 2>/dev/null
expect "batch with one malformed record" 1 $?
grep -q '"ok":false,"error":{"code":"invalid_instance"' "$tmp/results2.ndjson" || {
  echo 'FAIL: batch error record lacks the typed error code'
  fail=1
}
grep -q '"summary":true,"records":7,"ok":6,"failed":1' "$tmp/results2.ndjson" || {
  echo 'FAIL: batch summary after malformed record lacks expected counts'
  fail=1
}

"$CLI" gen --count=3 >/dev/null 2>&1
expect "gen --count without --format=ndjson" 2 $?

# ---- env-var fail-point activation (only in failpoint-enabled builds) ------
SHAREDRES_FAILPOINTS='io.next_line=throw@2' \
  "$CLI" bounds --instance="$tmp/inst.txt" >/dev/null 2>&1
rc=$?
if [ "$rc" -eq 3 ] || [ "$rc" -eq 0 ]; then
  echo "ok: env fail point (exit $rc; 0 means compiled out)"
else
  echo "FAIL: env fail point: expected exit 3 (or 0 when compiled out), got $rc"
  fail=1
fi

exit $fail
