# Proves the batch determinism contract through the real binary:
#
#  1. `sharedres_cli batch` output is byte-identical across
#     SHAREDRES_THREADS=1/2/8 (ordered emission + commutative metrics), and
#     identical again on a rerun.
#  2. Record k of a `gen --count=N --seed=S --format=ndjson` stream
#     corresponds exactly to the single-shot `gen --seed=S+k` instance: the
#     batch result's makespan and embedded schedule text match a one-shot
#     `solve` of that instance.
#  3. With the solve cache on (--cache), the per-record lines are STILL
#     byte-identical across thread counts AND to the cache-off run — a
#     duplicated stream makes sure real hits (not just misses) are on the
#     compared path. Only the summary line may differ (cache.* metrics).
#
# Run by ctest as cli_batch_determinism (label tier1).
#
#   usage: test_batch_determinism.sh <path-to-sharedres_cli>
#
# Uses only sh + python3, both required by the existing scripts/ tooling.
set -u

CLI=${1:?usage: test_batch_determinism.sh <path-to-sharedres_cli>}
TMP=$(mktemp -d) || exit 1
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

SEED=42
COUNT=30
"$CLI" gen --family=uniform --machines=6 --jobs=60 --seed=$SEED \
  --count=$COUNT --format=ndjson --out="$TMP/stream.ndjson" > /dev/null \
  || fail "gen --format=ndjson exited $?"

run() {  # run <threads> <out.ndjson>
  SHAREDRES_THREADS=$1 "$CLI" batch --in="$TMP/stream.ndjson" \
    --emit-schedules > "$2" || fail "batch (threads=$1) exited $?"
}

run 1 "$TMP/t1.ndjson"
run 2 "$TMP/t2.ndjson"
run 8 "$TMP/t8.ndjson"
run 8 "$TMP/t8_again.ndjson"

cmp -s "$TMP/t1.ndjson" "$TMP/t2.ndjson" \
  || fail "batch output differs between SHAREDRES_THREADS=1 and 2"
cmp -s "$TMP/t1.ndjson" "$TMP/t8.ndjson" \
  || fail "batch output differs between SHAREDRES_THREADS=1 and 8"
cmp -s "$TMP/t8.ndjson" "$TMP/t8_again.ndjson" \
  || fail "batch output differs between identical reruns"

# ---- cache on/off and cross-thread byte identity ---------------------------
# Duplicate the stream so two thirds of the records are cache hits, including
# schedule re-emission through the de-canonicalizer (--emit-schedules).
cat "$TMP/stream.ndjson" "$TMP/stream.ndjson" "$TMP/stream.ndjson" \
  > "$TMP/dup.ndjson"

run_cached() {  # run_cached <threads> <cache-flag> <out.ndjson>
  SHAREDRES_THREADS=$1 "$CLI" batch --in="$TMP/dup.ndjson" \
    --emit-schedules $2 > "$3" || fail "batch $2 (threads=$1) exited $?"
}

run_cached 1 ""          "$TMP/dup_off.ndjson"
run_cached 1 "--cache"   "$TMP/dup_c1.ndjson"
run_cached 2 "--cache"   "$TMP/dup_c2.ndjson"
run_cached 8 "--cache"   "$TMP/dup_c8.ndjson"
run_cached 8 "--cache=4" "$TMP/dup_evict.ndjson"

cmp -s "$TMP/dup_c1.ndjson" "$TMP/dup_c2.ndjson" \
  || fail "cached batch output differs between SHAREDRES_THREADS=1 and 2"
cmp -s "$TMP/dup_c1.ndjson" "$TMP/dup_c8.ndjson" \
  || fail "cached batch output differs between SHAREDRES_THREADS=1 and 8"

# Per-record lines (everything but the trailing summary) must match the
# cache-off run exactly — with a full-size cache and under eviction thrash.
for cached in "$TMP/dup_c1.ndjson" "$TMP/dup_evict.ndjson"; do
  sed '$d' "$TMP/dup_off.ndjson" > "$TMP/off.records"
  sed '$d' "$cached" > "$TMP/on.records"
  cmp -s "$TMP/off.records" "$TMP/on.records" \
    || fail "per-record output differs between cache off and $cached"
done

# The cached summary must actually report cache traffic.
python3 - "$TMP/dup_c1.ndjson" <<'EOF' || exit 1
import json, sys
summary = json.loads(open(sys.argv[1]).read().splitlines()[-1])
counters = summary["metrics"]["counters"]
hits, misses = counters["cache.hits"], counters["cache.misses"]
if misses <= 0 or hits <= 0 or hits < 2 * misses:
    sys.exit(f"FAIL: triplicated stream should hit twice per miss, "
             f"got hits={hits} misses={misses}")
EOF

# ---- the improved portfolio through the same gates -------------------------
# --algorithm=improved runs three engines per record and keeps the best
# schedule; the choice must stay byte-deterministic across thread counts and
# across the solve cache (whose canonical twin exercises the engine's
# scale-equivariance contract, DESIGN.md §15).

run_improved() {  # run_improved <threads> <cache-flag> <out.ndjson>
  SHAREDRES_THREADS=$1 "$CLI" batch --in="$TMP/dup.ndjson" \
    --algorithm=improved --emit-schedules $2 > "$3" \
    || fail "batch --algorithm=improved $2 (threads=$1) exited $?"
}

run_improved 1 ""        "$TMP/imp_t1.ndjson"
run_improved 2 ""        "$TMP/imp_t2.ndjson"
run_improved 8 ""        "$TMP/imp_t8.ndjson"
run_improved 8 ""        "$TMP/imp_t8_again.ndjson"
run_improved 1 "--cache" "$TMP/imp_c1.ndjson"
run_improved 8 "--cache" "$TMP/imp_c8.ndjson"

cmp -s "$TMP/imp_t1.ndjson" "$TMP/imp_t2.ndjson" \
  || fail "improved batch output differs between SHAREDRES_THREADS=1 and 2"
cmp -s "$TMP/imp_t1.ndjson" "$TMP/imp_t8.ndjson" \
  || fail "improved batch output differs between SHAREDRES_THREADS=1 and 8"
cmp -s "$TMP/imp_t8.ndjson" "$TMP/imp_t8_again.ndjson" \
  || fail "improved batch output differs between identical reruns"
cmp -s "$TMP/imp_c1.ndjson" "$TMP/imp_c8.ndjson" \
  || fail "improved cached output differs between SHAREDRES_THREADS=1 and 8"

for cached in "$TMP/imp_c1.ndjson"; do
  sed '$d' "$TMP/imp_t1.ndjson" > "$TMP/imp_off.records"
  sed '$d' "$cached" > "$TMP/imp_on.records"
  cmp -s "$TMP/imp_off.records" "$TMP/imp_on.records" \
    || fail "improved per-record output differs between cache off and on"
done

# Portfolio domination, record by record: the improved makespan never
# exceeds the window scheduler's on the same input stream.
python3 - "$TMP/imp_t1.ndjson" "$TMP/dup_off.ndjson" <<'EOF' || exit 1
import json, sys
improved = [json.loads(l) for l in open(sys.argv[1])][:-1]
window = [json.loads(l) for l in open(sys.argv[2])][:-1]
assert len(improved) == len(window), "record counts differ"
for imp, win in zip(improved, window):
    assert imp["ok"] and win["ok"], (imp, win)
    if imp["makespan"] > win["makespan"]:
        sys.exit(f"FAIL: record {imp['index']}: improved makespan "
                 f"{imp['makespan']} > window {win['makespan']}")
EOF

# ---- the d-resource facade through the same gates --------------------------
# --algorithm=multires on a d=2 stream: byte-identical across thread counts
# and reruns, and cache-on per-record lines equal to cache-off (the d>1
# canonical key + per-axis de-scaling path, DESIGN.md §16).

"$CLI" gen --family=correlated --resources=2 --machines=6 --jobs=40 \
  --seed=$SEED --count=$COUNT --format=ndjson \
  --out="$TMP/stream-d2.ndjson" > /dev/null \
  || fail "gen --resources=2 --format=ndjson exited $?"
cat "$TMP/stream-d2.ndjson" "$TMP/stream-d2.ndjson" "$TMP/stream-d2.ndjson" \
  > "$TMP/dup-d2.ndjson"

run_multires() {  # run_multires <threads> <cache-flag> <out.ndjson>
  SHAREDRES_THREADS=$1 "$CLI" batch --in="$TMP/dup-d2.ndjson" \
    --algorithm=multires --emit-schedules $2 > "$3" \
    || fail "batch --algorithm=multires $2 (threads=$1) exited $?"
}

run_multires 1 ""        "$TMP/mr_t1.ndjson"
run_multires 2 ""        "$TMP/mr_t2.ndjson"
run_multires 8 ""        "$TMP/mr_t8.ndjson"
run_multires 8 ""        "$TMP/mr_t8_again.ndjson"
run_multires 1 "--cache" "$TMP/mr_c1.ndjson"
run_multires 8 "--cache" "$TMP/mr_c8.ndjson"

cmp -s "$TMP/mr_t1.ndjson" "$TMP/mr_t2.ndjson" \
  || fail "multires batch output differs between SHAREDRES_THREADS=1 and 2"
cmp -s "$TMP/mr_t1.ndjson" "$TMP/mr_t8.ndjson" \
  || fail "multires batch output differs between SHAREDRES_THREADS=1 and 8"
cmp -s "$TMP/mr_t8.ndjson" "$TMP/mr_t8_again.ndjson" \
  || fail "multires batch output differs between identical reruns"
cmp -s "$TMP/mr_c1.ndjson" "$TMP/mr_c8.ndjson" \
  || fail "multires cached output differs between SHAREDRES_THREADS=1 and 8"

sed '$d' "$TMP/mr_t1.ndjson" > "$TMP/mr_off.records"
sed '$d' "$TMP/mr_c1.ndjson" > "$TMP/mr_on.records"
cmp -s "$TMP/mr_off.records" "$TMP/mr_on.records" \
  || fail "multires per-record output differs between cache off and on"

# d=1 conservative-extension pin through the real binary: on a single-axis
# stream the multires facade delegates to the window scheduler, so the
# per-record lines must be byte-identical up to the algorithm tag.
SHAREDRES_THREADS=8 "$CLI" batch --in="$TMP/stream.ndjson" \
  --algorithm=multires --emit-schedules > "$TMP/mr_d1.ndjson" \
  || fail "batch --algorithm=multires on a d=1 stream exited $?"
SHAREDRES_THREADS=8 "$CLI" batch --in="$TMP/stream.ndjson" \
  --algorithm=window --emit-schedules > "$TMP/win_d1.ndjson" \
  || fail "batch --algorithm=window exited $?"
sed '$d' "$TMP/mr_d1.ndjson" | \
  sed 's/"algorithm":"multires"/"algorithm":"window"/' > "$TMP/mr_d1.records"
sed '$d' "$TMP/win_d1.ndjson" > "$TMP/win_d1.records"
cmp -s "$TMP/mr_d1.records" "$TMP/win_d1.records" \
  || fail "multires d=1 records differ from the window scheduler's"

# ---- record k <-> one-shot correspondence ----------------------------------
K=7
"$CLI" gen --family=uniform --machines=6 --jobs=60 --seed=$((SEED + K)) \
  --out="$TMP/inst.txt" > /dev/null || fail "gen single instance exited $?"
"$CLI" solve --instance="$TMP/inst.txt" --out="$TMP/sched.txt" \
  > "$TMP/solve.out" || fail "solve exited $?"

python3 - "$TMP/t1.ndjson" "$TMP/solve.out" "$TMP/sched.txt" $K <<'EOF' || exit 1
import json, sys
batch_path, solve_out, sched_path, k = sys.argv[1:5]
k = int(k)

records = [json.loads(line) for line in open(batch_path)]
summary = records[-1]
assert summary.get("summary") is True, "last line is not the summary"
record = records[k]
assert record["index"] == k and record["ok"], f"record {k} not ok: {record}"

solve_makespan = None
for line in open(solve_out):
    if line.startswith("makespan:"):
        solve_makespan = int(line.split()[1])
assert solve_makespan is not None, "solve output lacks a makespan line"
if record["makespan"] != solve_makespan:
    sys.exit(f"FAIL: batch record {k} makespan {record['makespan']} != "
             f"one-shot solve makespan {solve_makespan}")

one_shot_schedule = open(sched_path).read()
if record["schedule"] != one_shot_schedule:
    sys.exit(f"FAIL: batch record {k} embedded schedule differs from the "
             f"one-shot solve schedule")

if summary["records"] != len(records) - 1 or summary["failed"] != 0:
    sys.exit(f"FAIL: summary counts wrong: {summary}")
EOF

echo "PASS: batch output identical across threads/reruns/cache-modes and equal to one-shot solves"
