# Fault-injection soak for the scheduling service. Requires a build with
# -DSHAREDRES_FAILPOINTS=ON (Debug default); skips cleanly otherwise.
#
# Each round arms fail points (env grammar: site=throw@every:N / @prob:P)
# against a `serve` run and asserts the robustness contract:
#
#  * the daemon never crashes — every round exits 0 after a clean drain;
#  * exactly one typed response line per request, even when engine steps,
#    deadline checks, admission, or journal appends throw repeatedly;
#  * injection is contained: a clean (unarmed) re-run afterwards is
#    byte-identical to the clean reference — no residue, no corruption;
#  * at SHAREDRES_THREADS=1 an armed run is itself reproducible: the same
#    arming yields byte-identical output twice. (every:N counts hits
#    process-globally, so multi-thread armed runs may differ between
#    reruns; single-thread runs may not.)
#
# Run by ctest as service_soak (label tier1_slow) and by the CI
# service-soak job. Budget: ~30s.
#
#   usage: soak_service.sh <path-to-sharedres_cli>
set -u

CLI=${1:?usage: soak_service.sh <path-to-sharedres_cli>}
TMP=$(mktemp -d) || exit 1
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

if "$CLI" failpoints --list 2> /dev/null | grep -q "compiled out"; then
  echo "SKIP: fail points compiled out (build with -DSHAREDRES_FAILPOINTS=ON)"
  exit 0
fi

COUNT=400
"$CLI" gen --family=uniform --machines=6 --jobs=900 --seed=3 \
  --count=$COUNT --format=ndjson --out="$TMP/window.ndjson" > /dev/null \
  || fail "gen (window stream) exited $?"
"$CLI" gen --family=uniform --machines=8 --jobs=4000 --max-size=1 --seed=5 \
  --count=$COUNT --format=ndjson --out="$TMP/unit.ndjson" > /dev/null \
  || fail "gen (unit stream) exited $?"

# soak <name> <stream> <algorithm> <threads> <failpoints> [extra flags...]
#
# Runs serve with the given arming; asserts exit 0, a summary line, and
# exactly one response line per request. Output lands in $TMP/<name>.out.
soak() {
  name=$1; stream=$2; algorithm=$3; threads=$4; fps=$5; shift 5
  SHAREDRES_FAILPOINTS="$fps" SHAREDRES_THREADS=$threads \
    "$CLI" serve --algorithm="$algorithm" "$@" < "$stream" \
    > "$TMP/$name.out" 2> "$TMP/$name.err" \
    || fail "$name: serve crashed or exited non-zero (armed: $fps)"
  tail -n 1 "$TMP/$name.out" | grep -q '"summary":true' \
    || fail "$name: no summary line (armed: $fps)"
  RESPONSES=$(sed '$d' "$TMP/$name.out" | wc -l)
  [ "$RESPONSES" -eq "$COUNT" ] \
    || fail "$name: $RESPONSES responses for $COUNT requests (armed: $fps)"
}

# ---- per-site rounds: engine steps, deadlines, admission, journal ----------
soak sos_every "$TMP/window.ndjson" window 4 \
  "sos_engine.step=throw@every:50"
soak sos_prob "$TMP/window.ndjson" window 4 \
  "sos_engine.step=throw@prob:0.001,seed:21"
soak unit_every "$TMP/unit.ndjson" unit 4 \
  "unit_engine.step=throw@every:37"
soak deadline_every "$TMP/window.ndjson" window 4 \
  "deadline.check=throw@every:41" --deadline-steps=100000
soak admit_every "$TMP/window.ndjson" window 4 \
  "service.admit=throw@every:5"
soak journal_every "$TMP/window.ndjson" window 4 \
  "service.journal_append=throw@every:4" --journal="$TMP/journal_soak"

# Journal integrity under injected append failures: every journaled line is
# one of the input lines, verbatim (failed appends are not admitted, and a
# partial write never merges two records).
sort "$TMP/journal_soak" > "$TMP/journal_sorted"
sort "$TMP/window.ndjson" > "$TMP/input_sorted"
comm -23 "$TMP/journal_sorted" "$TMP/input_sorted" > "$TMP/journal_extra"
[ -s "$TMP/journal_extra" ] && fail "journal holds lines not in the input"

# ---- everything at once, swept over injection seeds ------------------------
# Each storm round re-arms every class of fault at once with a different
# prob seed, so repeated runs explore different failure interleavings.
for seed in 1 2 3 4 5 6 7 8; do
  soak "storm_$seed" "$TMP/window.ndjson" window 8 \
    "sos_engine.step=throw@prob:0.0005,seed:$seed,deadline.check=throw@every:997,service.admit=throw@every:11,service.journal_append=throw@every:7" \
    --deadline-steps=100000 --journal="$TMP/journal_storm_$seed"
  rm -f "$TMP/journal_storm_$seed"
done

# ---- armed reproducibility at threads=1 ------------------------------------
ARMED="sos_engine.step=throw@every:300,service.admit=throw@every:7"
soak repro_a "$TMP/window.ndjson" window 1 "$ARMED"
soak repro_b "$TMP/window.ndjson" window 1 "$ARMED"
cmp -s "$TMP/repro_a.out" "$TMP/repro_b.out" \
  || fail "armed single-thread runs are not byte-identical"

# ---- containment: clean re-run is byte-identical to the clean reference ----
SHAREDRES_THREADS=4 "$CLI" serve --algorithm=window < "$TMP/window.ndjson" \
  > "$TMP/clean_ref.out" || fail "clean reference serve exited $?"
SHAREDRES_THREADS=4 "$CLI" serve --algorithm=window < "$TMP/window.ndjson" \
  > "$TMP/clean_again.out" || fail "clean re-run serve exited $?"
cmp -s "$TMP/clean_ref.out" "$TMP/clean_again.out" \
  || fail "clean re-run after the soak differs from the clean reference"

echo "PASS: service soak (6 site rounds, storm, armed repro, containment)"
