# Proves the graceful-drain contract through the real binary:
#
#  1. SIGTERM mid-stream: the daemon stops accepting, finishes in-flight
#     work, writes the summary line, and exits 0.
#  2. The killed run's response body is a byte-prefix of an uninterrupted
#     run on the same stream — ordered emission means a drain never leaves
#     a torn or reordered line behind.
#  3. SIGINT behaves identically.
#  4. A journaled drain leaves a journal that replays cleanly (no torn
#     tail), covering exactly the admitted prefix.
#
# Run by ctest as cli_service_drain (label tier1).
#
#   usage: test_service_drain.sh <path-to-sharedres_cli>
set -u

CLI=${1:?usage: test_service_drain.sh <path-to-sharedres_cli>}
TMP=$(mktemp -d) || exit 1
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

COUNT=40
"$CLI" gen --family=uniform --machines=6 --jobs=80 --seed=11 \
  --count=$COUNT --format=ndjson --out="$TMP/stream.ndjson" > /dev/null \
  || fail "gen exited $?"

# Uninterrupted reference run (threads pinned: prefix comparison needs the
# same bytes per record, which the determinism contract guarantees).
SHAREDRES_THREADS=2 "$CLI" serve --emit-schedules < "$TMP/stream.ndjson" \
  > "$TMP/full.ndjson" || fail "reference serve exited $?"
sed '$d' "$TMP/full.ndjson" > "$TMP/full_body.ndjson"

drain_round() {  # drain_round <signal> <outdir> [extra serve flags...]
  sig=$1; outdir=$2; shift 2
  mkdir -p "$outdir"
  FIFO="$outdir/in.fifo"
  mkfifo "$FIFO" || fail "mkfifo failed"
  SHAREDRES_THREADS=2 "$CLI" serve --emit-schedules "$@" < "$FIFO" \
    > "$outdir/out.ndjson" 2> "$outdir/err.txt" &
  SRV=$!
  # Feed a slow trickle so the signal reliably lands mid-stream, then hold
  # the fifo open (the writer must outlive the kill or serve just sees EOF).
  {
    head -n 10 "$TMP/stream.ndjson"
    sleep 2
    tail -n +11 "$TMP/stream.ndjson"
  } > "$FIFO" &
  FEEDER=$!
  sleep 1                       # let the first 10 records land
  kill "-$sig" "$SRV" 2> /dev/null || fail "kill -$sig failed ($sig round)"
  wait "$SRV"
  rc=$?
  kill "$FEEDER" 2> /dev/null
  wait "$FEEDER" 2> /dev/null
  [ "$rc" -eq 0 ] || fail "serve exited $rc after $sig (want 0: clean drain)"

  # The last line is the summary; everything before it must be a byte-prefix
  # of the uninterrupted run.
  [ -s "$outdir/out.ndjson" ] || fail "no output at all after $sig"
  tail -n 1 "$outdir/out.ndjson" > "$outdir/summary.json"
  grep -q '"summary":true' "$outdir/summary.json" \
    || fail "$sig run did not end with a summary line"
  grep -q '"drained":true' "$outdir/summary.json" \
    || fail "$sig run's summary does not report drained:true"
  sed '$d' "$outdir/out.ndjson" > "$outdir/body.ndjson"
  BODY_BYTES=$(wc -c < "$outdir/body.ndjson")
  head -c "$BODY_BYTES" "$TMP/full_body.ndjson" > "$outdir/prefix.ndjson"
  cmp -s "$outdir/body.ndjson" "$outdir/prefix.ndjson" \
    || fail "$sig run's body is not a byte-prefix of the uninterrupted run"
  BODY_LINES=$(wc -l < "$outdir/body.ndjson")
  [ "$BODY_LINES" -ge 10 ] || fail "$sig run drained fewer responses (got \
$BODY_LINES) than were admitted before the signal"
}

drain_round TERM "$TMP/term"
drain_round INT "$TMP/int"

# ---- journaled drain replays cleanly ---------------------------------------
drain_round TERM "$TMP/jterm" --journal="$TMP/journal"
JOURNAL_LINES=$(wc -l < "$TMP/journal")
BODY_LINES=$(wc -l < "$TMP/jterm/body.ndjson")
[ "$JOURNAL_LINES" -eq "$BODY_LINES" ] \
  || fail "journal holds $JOURNAL_LINES lines but $BODY_LINES were served"
head -n "$JOURNAL_LINES" "$TMP/stream.ndjson" > "$TMP/expected_journal"
cmp -s "$TMP/journal" "$TMP/expected_journal" \
  || fail "journal after drain is not the admitted input prefix"

SHAREDRES_THREADS=2 "$CLI" serve --emit-schedules --journal="$TMP/journal" \
  --replay < /dev/null > "$TMP/life2.ndjson" || fail "post-drain replay exited $?"
sed '$d' "$TMP/life2.ndjson" > "$TMP/life2_body.ndjson"
cmp -s "$TMP/life2_body.ndjson" "$TMP/jterm/body.ndjson" \
  || fail "post-drain replay differs from the drained run's responses"

echo "PASS: graceful drain (TERM, INT, journaled drain + replay)"
