// sharedres_cli — command-line front end for the library.
//
//   sharedres_cli gen      --family=uniform --machines=8 --jobs=100
//                          [--capacity=1000000] [--max-size=4] [--seed=1]
//                          [--count=N --format=ndjson] [--out=inst.txt]
//   sharedres_cli solve    --instance=inst.txt
//                          [--algorithm=window|unit|gg|equalsplit|sequential]
//                          [--out=sched.txt] [--gantt]
//   sharedres_cli validate --instance=inst.txt --schedule=sched.txt [--json]
//   sharedres_cli bounds   --instance=inst.txt
//   sharedres_cli batch    --in=stream.ndjson | --dir=instances/
//                          [--algorithm=...] [--threads=N] [--queue=N]
//                          [--emit-schedules] [--cache[=N]]
//                          [--out=results.ndjson]
//
// `gen` writes a reproducible instance (or, with --count=N --format=ndjson,
// a stream of N instances with seeds seed..seed+N-1, each identical to the
// corresponding single `gen --seed=<s>` run); `solve` schedules one
// instance, reports the makespan against the Eq. (1) lower bound and
// optionally dumps the schedule and an ASCII Gantt chart; `validate`
// re-checks a schedule file (with --json it prints every violation as a
// structured record); `batch` runs a whole NDJSON stream (or a directory of
// text instances) through the pipeline in src/batch — one result line per
// record in input order, then a summary line.
//
// Exit-code contract (stable; scripts and CI depend on it):
//   0  success / feasible schedule / batch with zero failed records
//   1  infeasible schedule, invalid packing, internal failure, or a batch
//      in which at least one record failed (the batch still ran to the end)
//   2  usage error (unknown command, bad flag value, missing required flag)
//   3  input error (unreadable file, parse error, semantically invalid
//      instance, arithmetic overflow caused by input magnitudes)
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <iostream>
#include <string>
#include <vector>

#include <sstream>

#include "baselines/baselines.hpp"
#include "batch/pipeline.hpp"
#include "batch/stream.hpp"
#include "binpack/packers.hpp"
#include "core/lower_bounds.hpp"
#include "obs/json_export.hpp"
#include "core/sos_scheduler.hpp"
#include "core/validator.hpp"
#include "io/text_io.hpp"
#include "sas/sas_bounds.hpp"
#include "sas/sas_scheduler.hpp"
#include "sas/weighted.hpp"
#include "sim/analysis.hpp"
#include "sim/svg.hpp"
#include "sim/assignment.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "workloads/sos_generators.hpp"

namespace {

using namespace sharedres;

// The documented exit-code contract (see header comment and README).
constexpr int kExitOk = 0;
constexpr int kExitInfeasible = 1;
constexpr int kExitUsage = 2;
constexpr int kExitInput = 3;

int usage() {
  std::cerr
      << "usage: sharedres_cli <gen|solve|validate|bounds|pack|sas|batch> "
         "[--flags]\n"
         "  gen      --family=... --machines=M --jobs=N [--count=K "
         "--format=ndjson] [--out=f]\n"
         "  solve    --instance=f [--algorithm=window|unit|gg|equalsplit|"
         "sequential] [--parallel=N] [--gantt] [--stats] [--svg=f.svg] "
         "[--out=f]\n"
         "  validate --instance=f --schedule=f [--json] [--max-violations=N]\n"
         "  bounds   --instance=f\n"
         "  pack     --instance=<packing file> [--algorithm=window|nextfit|"
         "nfd|ffd|pairing] [--out=f]\n"
         "  sas      --instance=<sas file> [--weights=w1,w2,...]\n"
         "  batch    --in=stream.ndjson|- | --dir=d [--algorithm=...] "
         "[--threads=N] [--queue=N] [--emit-schedules] [--cache[=N]] "
         "[--out=f]\n"
         "global: --metrics-json=<file> dumps the observability registry\n"
         "        (src/obs) after any command, successful or not\n"
         "exit codes: 0 ok | 1 infeasible | 2 usage | 3 input error\n";
  return kExitUsage;
}

int cmd_gen(const util::Cli& cli) {
  workloads::SosConfig cfg;
  cfg.machines = static_cast<int>(cli.get_int("machines", 8));
  cfg.capacity = cli.get_int("capacity", 1'000'000);
  cfg.jobs = static_cast<std::size_t>(cli.get_int("jobs", 100));
  cfg.max_size = cli.get_int("max-size", 4);
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string family = cli.get("family", "uniform");
  const std::string format = cli.get("format", "text");
  const std::int64_t count = cli.get_int("count", 1);
  if (format != "text" && format != "ndjson") {
    std::cerr << "gen: unknown --format=" << format << "\n";
    return kExitUsage;
  }
  if (count < 1) {
    std::cerr << "gen: --count must be >= 1\n";
    return kExitUsage;
  }
  if (count > 1 && format != "ndjson") {
    std::cerr << "gen: --count=" << count << " requires --format=ndjson\n";
    return kExitUsage;
  }
  const std::string out = cli.get("out", "");

  if (format == "ndjson") {
    // One record per line, seeds seed..seed+count-1. Record k is identical
    // to the instance a single `gen --seed=<seed+k>` run would emit — the
    // correspondence the batch-determinism script relies on.
    std::ofstream file;
    if (!out.empty()) {
      file.open(out);
      if (!file) {
        std::cerr << "cannot open " << out << "\n";
        return kExitInput;
      }
    }
    std::ostream& os = out.empty() ? std::cout : file;
    for (std::int64_t k = 0; k < count; ++k) {
      const core::Instance inst = workloads::make_instance(family, cfg);
      os << batch::format_instance_record(
                inst, family + "-s" + std::to_string(cfg.seed))
         << "\n";
      ++cfg.seed;
    }
    if (!out.empty()) {
      std::cout << "wrote " << count << " instances to " << out << "\n";
    }
    return kExitOk;
  }

  const core::Instance inst = workloads::make_instance(family, cfg);
  if (out.empty()) {
    io::write_instance(std::cout, inst);
  } else {
    io::save_instance(out, inst);
    std::cout << "wrote " << inst.size() << " jobs to " << out << "\n";
  }
  return kExitOk;
}

/// Convert a directory of text instances (sorted by filename, so the record
/// order is reproducible) into an in-memory NDJSON stream. A file that does
/// not parse as an instance is forwarded as a single raw line: the pipeline
/// turns it into a typed per-record parse error without aborting the batch,
/// which is exactly the mid-stream-malformed contract of the NDJSON path.
std::string slurp_instance_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  std::string ndjson;
  for (const fs::path& path : files) {
    try {
      const core::Instance inst = io::load_instance(path.string());
      ndjson += batch::format_instance_record(inst, path.filename().string());
    } catch (const util::Error&) {
      std::ifstream in(path);
      std::string content((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
      std::replace(content.begin(), content.end(), '\n', ' ');
      ndjson += content;
    }
    ndjson += '\n';
  }
  return ndjson;
}

int cmd_batch(const util::Cli& cli) {
  const std::string in_path = cli.get("in", "");
  const std::string dir = cli.get("dir", "");
  if (in_path.empty() == dir.empty()) {
    std::cerr << "batch: exactly one of --in=<file|-> or --dir=<dir> "
                 "required\n";
    return kExitUsage;
  }

  batch::BatchOptions options;
  options.algorithm = cli.get("algorithm", "window");
  // run_batch re-validates, but an unknown algorithm is a usage error here
  // (exit 2), before any input is touched — same policy as `solve`.
  if (options.algorithm != "window" && options.algorithm != "unit" &&
      options.algorithm != "gg" && options.algorithm != "equalsplit" &&
      options.algorithm != "sequential") {
    std::cerr << "batch: unknown --algorithm=" << options.algorithm << "\n";
    return kExitUsage;
  }
  const std::int64_t threads = cli.get_int(
      "threads", static_cast<std::int64_t>(util::default_threads()));
  const std::int64_t queue = cli.get_int("queue", 64);
  if (threads < 1 || queue < 1) {
    std::cerr << "batch: --threads and --queue must be >= 1\n";
    return kExitUsage;
  }
  options.threads = static_cast<std::size_t>(threads);
  options.queue_capacity = static_cast<std::size_t>(queue);
  options.emit_schedules = cli.has("emit-schedules");
  if (cli.has("cache")) {
    // Bare --cache (stored as "true") selects the default capacity;
    // --cache=N pins it. --cache=0 is explicit off.
    const std::int64_t capacity =
        cli.get("cache", "") == "true" ? 1024 : cli.get_int("cache", 0);
    if (capacity < 0) {
      std::cerr << "batch: --cache must be >= 0\n";
      return kExitUsage;
    }
    options.cache_capacity = static_cast<std::size_t>(capacity);
  }

  const std::string out_path = cli.get("out", "");
  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path);
    if (!out_file) {
      std::cerr << "cannot open " << out_path << "\n";
      return kExitInput;
    }
  }
  std::ostream& out = out_path.empty() ? std::cout : out_file;

  batch::BatchSummary summary;
  if (!dir.empty()) {
    if (!std::filesystem::is_directory(dir)) {
      std::cerr << "cannot open directory " << dir << "\n";
      return kExitInput;
    }
    std::istringstream in(slurp_instance_dir(dir));
    summary = batch::run_batch(in, out, options);
  } else if (in_path == "-") {
    summary = batch::run_batch(std::cin, out, options);
  } else {
    std::ifstream in(in_path);
    if (!in) {
      std::cerr << "cannot open " << in_path << "\n";
      return kExitInput;
    }
    summary = batch::run_batch(in, out, options);
  }
  if (!out_path.empty()) {
    std::cerr << "batch: " << summary.records << " records, " << summary.ok
              << " ok, " << summary.failed << " failed\n";
  }
  return summary.failed == 0 ? kExitOk : kExitInfeasible;
}

int cmd_solve(const util::Cli& cli) {
  const std::string path = cli.get("instance", "");
  if (path.empty()) {
    std::cerr << "solve: --instance=<file> required\n";
    return kExitUsage;
  }
  // Validate flags before touching the filesystem: a typo in --algorithm is
  // a usage error (exit 2) even when the instance file is also bad.
  const std::string algorithm = cli.get("algorithm", "window");
  if (algorithm != "window" && algorithm != "unit" && algorithm != "gg" &&
      algorithm != "equalsplit" && algorithm != "sequential") {
    std::cerr << "solve: unknown --algorithm=" << algorithm << "\n";
    return kExitUsage;
  }
  // --parallel=N engages the descriptor-parallel unit engine with N workers
  // (0 = scalar, the default). Unit-only: no other algorithm has a parallel
  // path, and silently ignoring the flag would misreport an experiment.
  const std::int64_t parallel = cli.get_int("parallel", 0);
  if (parallel < 0) {
    std::cerr << "solve: --parallel must be >= 0\n";
    return kExitUsage;
  }
  if (parallel > 0 && algorithm != "unit") {
    std::cerr << "solve: --parallel requires --algorithm=unit\n";
    return kExitUsage;
  }
  const core::Instance inst = io::load_instance(path);

  core::Schedule schedule;
  if (algorithm == "window") {
    schedule = core::schedule_sos(inst);
  } else if (algorithm == "unit") {
    core::SosOptions options;
    if (parallel > 0) {
      options.parallel_threads = static_cast<std::size_t>(parallel);
      // The CLI flag is an explicit request: engage regardless of size so
      // identity scripts can diff small instances through the fast path.
      options.parallel_min_jobs = 0;
    }
    schedule = core::schedule_sos_unit(inst, options);
  } else if (algorithm == "gg") {
    schedule = baselines::schedule_garey_graham(inst);
  } else if (algorithm == "equalsplit") {
    schedule = baselines::schedule_equal_split(inst);
  } else if (algorithm == "sequential") {
    schedule = baselines::schedule_sequential(inst);
  } else {
    std::cerr << "solve: unknown --algorithm=" << algorithm << "\n";
    return kExitUsage;
  }

  const auto check = core::validate(inst, schedule);
  if (!check.ok) {
    std::cerr << "internal error: produced invalid schedule: " << check.error
              << "\n";
    return kExitInfeasible;
  }
  const core::LowerBounds lb = core::lower_bounds(inst);
  std::cout << "algorithm:    " << algorithm << "\n"
            << "jobs:         " << inst.size() << "\n"
            << "machines:     " << inst.machines() << "\n"
            << "makespan:     " << schedule.makespan() << "\n"
            << "lower bound:  " << lb.combined() << "\n"
            << "ratio vs LB:  "
            << static_cast<double>(schedule.makespan()) /
                   static_cast<double>(std::max<core::Time>(1, lb.combined()))
            << "\n";

  if (cli.has("gantt")) {
    std::cout << "\n" << sim::render_gantt(inst.size(), schedule);
    std::cout << "util "
              << sim::render_utilization(schedule, inst.capacity()) << "\n";
  }
  if (cli.has("stats")) {
    std::cout << "\n" << sim::to_string(sim::analyze(inst, schedule));
  }
  const std::string svg = cli.get("svg", "");
  if (!svg.empty()) {
    sim::save_svg(svg, inst, schedule);
    std::cout << "SVG written to " << svg << "\n";
  }
  const std::string out = cli.get("out", "");
  if (!out.empty()) {
    io::save_schedule(out, schedule);
    std::cout << "schedule written to " << out << "\n";
  }
  return kExitOk;
}

int cmd_validate(const util::Cli& cli) {
  const std::string inst_path = cli.get("instance", "");
  const std::string sched_path = cli.get("schedule", "");
  if (inst_path.empty() || sched_path.empty()) {
    std::cerr << "validate: --instance=<file> --schedule=<file> required\n";
    return kExitUsage;
  }
  const bool json = cli.has("json");
  const auto max_violations =
      static_cast<std::size_t>(cli.get_int("max-violations", 1024));
  const core::Instance inst = io::load_instance(inst_path);
  const core::Schedule schedule = io::load_schedule(sched_path);
  if (json) {
    core::ValidationReport report =
        core::validate_all(inst, schedule, max_violations);
    util::Json doc = core::to_json(report);
    doc.emplace("makespan", schedule.makespan());
    std::cout << doc.dump(2) << "\n";
    return report.ok() ? kExitOk : kExitInfeasible;
  }
  const auto check = core::validate(inst, schedule);
  if (check.ok) {
    std::cout << "OK: feasible schedule, makespan " << schedule.makespan()
              << "\n";
    return kExitOk;
  }
  std::cout << "INVALID: " << check.error << "\n";
  return kExitInfeasible;
}

int cmd_bounds(const util::Cli& cli) {
  const std::string path = cli.get("instance", "");
  if (path.empty()) {
    std::cerr << "bounds: --instance=<file> required\n";
    return kExitUsage;
  }
  const core::Instance inst = io::load_instance(path);
  const core::LowerBounds lb = core::lower_bounds(inst);
  std::cout << "resource (⌈Σs/C⌉):      " << lb.resource << "\n"
            << "volume (⌈Σp/m⌉):        " << lb.volume << "\n"
            << "longest job:            " << lb.longest_job << "\n"
            << "combined lower bound:   " << lb.combined() << "\n";
  if (inst.machines() >= 3) {
    std::cout << "Theorem 3.3 ratio:      "
              << core::sos_ratio_bound(inst.machines()).to_double() << "\n";
  }
  return kExitOk;
}

int cmd_pack(const util::Cli& cli) {
  const std::string path = cli.get("instance", "");
  if (path.empty()) {
    std::cerr << "pack: --instance=<packing file> required\n";
    return kExitUsage;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return kExitInput;
  }
  const binpack::PackingInstance inst = io::read_packing_instance(in);
  const std::string algorithm = cli.get("algorithm", "window");

  binpack::Packing packing;
  if (algorithm == "window") {
    packing = binpack::sliding_window_packing(inst);
  } else if (algorithm == "nextfit") {
    packing = binpack::next_fit_packing(inst);
  } else if (algorithm == "nfd") {
    packing = binpack::next_fit_packing(inst, true);
  } else if (algorithm == "ffd") {
    packing = binpack::first_fit_decreasing_packing(inst);
  } else if (algorithm == "pairing") {
    packing = binpack::pairing_packing(inst);
  } else {
    std::cerr << "pack: unknown --algorithm=" << algorithm << "\n";
    return kExitUsage;
  }
  const auto check = binpack::validate(inst, packing);
  if (!check.ok) {
    std::cerr << "internal error: invalid packing: " << check.error << "\n";
    return kExitInfeasible;
  }
  const auto lb = binpack::packing_lower_bounds(inst);
  std::cout << "algorithm:    " << algorithm << "\n"
            << "items:        " << inst.items.size() << "\n"
            << "cardinality:  " << inst.cardinality << "\n"
            << "bins:         " << packing.bin_count() << "\n"
            << "lower bound:  " << lb.combined() << "\n"
            << "ratio vs LB:  "
            << static_cast<double>(packing.bin_count()) /
                   static_cast<double>(std::max<std::size_t>(1, lb.combined()))
            << "\n";
  const std::string out = cli.get("out", "");
  if (!out.empty()) {
    std::ofstream os(out);
    if (!os) {
      std::cerr << "cannot open " << out << "\n";
      return kExitInput;
    }
    io::write_packing(os, packing);
    std::cout << "packing written to " << out << "\n";
  }
  return kExitOk;
}

std::vector<core::Res> parse_weights(const std::string& spec) {
  std::vector<core::Res> weights;
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    try {
      std::size_t pos = 0;
      const core::Res w = std::stoll(tok, &pos);
      if (pos != tok.size()) {
        throw util::Error::cli("weights", "bad weight '" + tok + "'");
      }
      weights.push_back(w);
    } catch (const std::logic_error&) {
      throw util::Error::cli("weights", "bad weight '" + tok + "'");
    }
  }
  return weights;
}

int cmd_sas(const util::Cli& cli) {
  const std::string path = cli.get("instance", "");
  if (path.empty()) {
    std::cerr << "sas: --instance=<sas file> required\n";
    return kExitUsage;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return kExitInput;
  }
  const sas::SasInstance inst = io::read_sas(in);
  const std::string weight_spec = cli.get("weights", "");

  sas::SasResult result;
  if (weight_spec.empty()) {
    result = sas::schedule_sas(inst);
  } else {
    result = sas::schedule_sas_weighted(inst, parse_weights(weight_spec));
  }
  const auto check = sas::validate(inst, result);
  if (!check.ok) {
    std::cerr << "internal error: invalid SAS schedule: " << check.error
              << "\n";
    return kExitInfeasible;
  }
  std::cout << "tasks:               " << inst.tasks.size() << "\n"
            << "machines:            " << inst.machines << "\n"
            << "sum of completions:  " << result.sum_completion << "\n"
            << "lower bound:         " << sas::sas_lower_bound(inst) << "\n";
  if (!weight_spec.empty()) {
    const auto weights = parse_weights(weight_spec);
    std::cout << "weighted objective:  "
              << sas::weighted_objective(result, weights) << "\n"
              << "weighted LB:         "
              << sas::weighted_lower_bound(inst, weights) << "\n";
  }
  for (std::size_t i = 0; i < inst.tasks.size(); ++i) {
    std::cout << "  task " << i << " (T" << result.task_class[i]
              << ", " << inst.tasks[i].size() << " jobs): finishes at "
              << result.completion[i] << "\n";
  }
  return kExitOk;
}

}  // namespace

/// --metrics-json is honored on every exit path (including errors, so a
/// failed run still leaves its counters behind for diagnosis); a metrics
/// write failure must not mask the command's own exit code.
void maybe_save_metrics(const util::Cli& cli) {
  const std::string path = cli.get("metrics-json", "");
  if (path.empty()) return;
  try {
    obs::save_metrics(path);
  } catch (const std::exception& e) {
    std::cerr << "warning: cannot write metrics: " << e.what() << "\n";
  }
}

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const util::Cli cli(argc - 1, argv + 1);
  try {
    int rc = -1;
    if (command == "gen") rc = cmd_gen(cli);
    if (command == "solve") rc = cmd_solve(cli);
    if (command == "validate") rc = cmd_validate(cli);
    if (command == "bounds") rc = cmd_bounds(cli);
    if (command == "pack") rc = cmd_pack(cli);
    if (command == "sas") rc = cmd_sas(cli);
    if (command == "batch") rc = cmd_batch(cli);
    if (rc >= 0) {
      maybe_save_metrics(cli);
      return rc;
    }
  } catch (const util::Error& e) {
    // The typed code picks the exit bucket: bad flags are usage errors,
    // everything else a typed throw can signal here came from the input.
    std::cerr << "error: " << e.what() << "\n";
    maybe_save_metrics(cli);
    return e.code() == util::ErrorCode::kCliUsage ? kExitUsage : kExitInput;
  } catch (const util::OverflowError& e) {
    std::cerr << "error: " << e.what() << "\n";
    maybe_save_metrics(cli);
    return kExitInput;
  } catch (const std::invalid_argument& e) {
    // Scheduler/generator preconditions (m >= 2, unknown family, ...) are
    // violated by what the user fed in, not by library bugs.
    std::cerr << "error: " << e.what() << "\n";
    maybe_save_metrics(cli);
    return kExitInput;
  } catch (const std::exception& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    maybe_save_metrics(cli);
    return kExitInfeasible;
  }
  return usage();
}
