// sharedres_cli — command-line front end for the library.
//
//   sharedres_cli gen      --family=uniform --machines=8 --jobs=100
//                          [--capacity=1000000] [--max-size=4] [--seed=1]
//                          [--resources=d] [--count=N --format=ndjson]
//                          [--out=inst.txt]
//   sharedres_cli solve    --instance=inst.txt
//                          [--algorithm=window|unit|improved|gg|equalsplit|
//                           sequential|multires]
//                          [--out=sched.txt] [--gantt]
//   sharedres_cli validate --instance=inst.txt --schedule=sched.txt [--json]
//   sharedres_cli bounds   --instance=inst.txt
//   sharedres_cli batch    --in=stream.ndjson | --dir=instances/
//                          [--algorithm=...] [--threads=N] [--queue=N]
//                          [--emit-schedules] [--cache[=N]]
//                          [--out=results.ndjson]
//   sharedres_cli serve    [--socket=path] [--cache[=N]] [...]
//   sharedres_cli loadgen  --socket=path --requests=N --rate=R
//                          [--process=poisson|bursty|diurnal] [...]
//
// `gen` writes a reproducible instance (or, with --count=N --format=ndjson,
// a stream of N instances with seeds seed..seed+N-1, each identical to the
// corresponding single `gen --seed=<s>` run); `solve` schedules one
// instance, reports the makespan against the Eq. (1) lower bound and
// optionally dumps the schedule and an ASCII Gantt chart; `validate`
// re-checks a schedule file (with --json it prints every violation as a
// structured record); `batch` runs a whole NDJSON stream (or a directory of
// text instances) through the pipeline in src/batch — one result line per
// record in input order, then a summary line.
//
// Exit-code contract (stable; scripts and CI depend on it):
//   0  success / feasible schedule / batch with zero failed records
//   1  infeasible schedule, invalid packing, internal failure, or a batch
//      in which at least one record failed (the batch still ran to the end)
//   2  usage error (unknown command, bad flag value, missing required flag)
//   3  input error (unreadable file, parse error, semantically invalid
//      instance, arithmetic overflow caused by input magnitudes)
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sstream>

#include "baselines/baselines.hpp"
#include "batch/pipeline.hpp"
#include "batch/stream.hpp"
#include "binpack/packers.hpp"
#include "core/lower_bounds.hpp"
#include "obs/json_export.hpp"
#include "core/improved_scheduler.hpp"
#include "core/multires_scheduler.hpp"
#include "core/sos_scheduler.hpp"
#include "core/validator.hpp"
#include "io/text_io.hpp"
#include "online/arrivals.hpp"
#include "sas/sas_bounds.hpp"
#include "sas/sas_scheduler.hpp"
#include "sas/weighted.hpp"
#include "service/journal.hpp"
#include "service/service.hpp"
#include "service/socket_server.hpp"
#include "sim/analysis.hpp"
#include "sim/svg.hpp"
#include "sim/assignment.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/parallel.hpp"
#include "workloads/multires_generators.hpp"
#include "workloads/sos_generators.hpp"
#include "workloads/traffic.hpp"

namespace {

using namespace sharedres;

// The documented exit-code contract (see header comment and README).
constexpr int kExitOk = 0;
constexpr int kExitInfeasible = 1;
constexpr int kExitUsage = 2;
constexpr int kExitInput = 3;

int usage() {
  std::cerr
      << "usage: sharedres_cli "
         "<gen|solve|validate|bounds|pack|sas|batch|serve|loadgen|failpoints> "
         "[--flags]\n"
         "  gen      --family=... --machines=M --jobs=N [--resources=d] "
         "[--count=K --format=ndjson] [--out=f]\n"
         "  solve    --instance=f [--algorithm=window|unit|improved|gg|"
         "equalsplit|"
         "sequential|multires] [--parallel=N] [--gantt] [--stats] "
         "[--svg=f.svg] [--out=f]\n"
         "  validate --instance=f --schedule=f [--json] [--max-violations=N]\n"
         "  bounds   --instance=f\n"
         "  pack     --instance=<packing file> [--algorithm=window|nextfit|"
         "nfd|ffd|pairing] [--out=f]\n"
         "  sas      --instance=<sas file> [--weights=w1,w2,...]\n"
         "  batch    --in=stream.ndjson|- | --dir=d [--algorithm=...] "
         "[--threads=N] [--queue=N] [--emit-schedules] [--cache[=N]] "
         "[--deadline-steps=N] [--deadline-ms=N] [--out=f]\n"
         "  serve    [--socket=path] [--algorithm=...] [--threads=N] "
         "[--queue=N] [--shed-high-water=N] [--deadline-steps=N] "
         "[--deadline-ms=N] [--journal=path [--journal-fsync] [--replay]] "
         "[--emit-schedules] [--max-connections=N] [--cache[=N]]\n"
         "  loadgen  --socket=path [--requests=N] [--rate=R] "
         "[--process=poisson|bursty|diurnal] [--family=...] [--jobs=N] "
         "[--machines=M] [--capacity=C] [--max-size=S] [--seed=S] "
         "[--per-step=L] [--deadline-steps=N] [--window=W] "
         "[--status-every=N] [--id-prefix=P] [--emit-stream=f] [--out=f]\n"
         "  failpoints --list\n"
         "global: --metrics-json=<file> dumps the observability registry\n"
         "        (src/obs) after any command, successful or not\n"
         "exit codes: 0 ok | 1 infeasible | 2 usage | 3 input error\n";
  return kExitUsage;
}

int cmd_gen(const util::Cli& cli) {
  workloads::SosConfig cfg;
  cfg.machines = static_cast<int>(cli.get_int("machines", 8));
  cfg.capacity = cli.get_int("capacity", 1'000'000);
  cfg.jobs = static_cast<std::size_t>(cli.get_int("jobs", 100));
  cfg.max_size = cli.get_int("max-size", 4);
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string family = cli.get("family", "uniform");
  const std::string format = cli.get("format", "text");
  const std::int64_t count = cli.get_int("count", 1);
  const std::int64_t resources = cli.get_int("resources", 1);
  if (resources < 1 ||
      resources > static_cast<std::int64_t>(core::kMaxResources)) {
    std::cerr << "gen: --resources must be in [1, " << core::kMaxResources
              << "]\n";
    return kExitUsage;
  }
  // --resources=d (d > 1) switches to the d-resource families
  // (workloads/multires_generators.hpp): correlated, anticorrelated, vmpack.
  workloads::MultiResConfig mcfg;
  mcfg.machines = cfg.machines;
  mcfg.resources = static_cast<std::size_t>(resources);
  mcfg.capacity = cfg.capacity;
  mcfg.jobs = cfg.jobs;
  mcfg.max_size = cfg.max_size;
  const auto make = [&]() {
    mcfg.seed = cfg.seed;
    return resources > 1 ? workloads::make_multires_instance(family, mcfg)
                         : workloads::make_instance(family, cfg);
  };
  if (format != "text" && format != "ndjson") {
    std::cerr << "gen: unknown --format=" << format << "\n";
    return kExitUsage;
  }
  if (count < 1) {
    std::cerr << "gen: --count must be >= 1\n";
    return kExitUsage;
  }
  if (count > 1 && format != "ndjson") {
    std::cerr << "gen: --count=" << count << " requires --format=ndjson\n";
    return kExitUsage;
  }
  const std::string out = cli.get("out", "");

  if (format == "ndjson") {
    // One record per line, seeds seed..seed+count-1. Record k is identical
    // to the instance a single `gen --seed=<seed+k>` run would emit — the
    // correspondence the batch-determinism script relies on.
    std::ofstream file;
    if (!out.empty()) {
      file.open(out);
      if (!file) {
        std::cerr << "cannot open " << out << "\n";
        return kExitInput;
      }
    }
    std::ostream& os = out.empty() ? std::cout : file;
    for (std::int64_t k = 0; k < count; ++k) {
      const core::Instance inst = make();
      os << batch::format_instance_record(
                inst, family + "-s" + std::to_string(cfg.seed))
         << "\n";
      ++cfg.seed;
    }
    if (!out.empty()) {
      std::cout << "wrote " << count << " instances to " << out << "\n";
    }
    return kExitOk;
  }

  const core::Instance inst = make();
  if (out.empty()) {
    io::write_instance(std::cout, inst);
  } else {
    io::save_instance(out, inst);
    std::cout << "wrote " << inst.size() << " jobs to " << out << "\n";
  }
  return kExitOk;
}

/// Convert a directory of text instances (sorted by filename, so the record
/// order is reproducible) into an in-memory NDJSON stream. A file that does
/// not parse as an instance is forwarded as a single raw line: the pipeline
/// turns it into a typed per-record parse error without aborting the batch,
/// which is exactly the mid-stream-malformed contract of the NDJSON path.
std::string slurp_instance_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  std::string ndjson;
  for (const fs::path& path : files) {
    try {
      const core::Instance inst = io::load_instance(path.string());
      ndjson += batch::format_instance_record(inst, path.filename().string());
    } catch (const util::Error&) {
      std::ifstream in(path);
      std::string content((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
      std::replace(content.begin(), content.end(), '\n', ' ');
      ndjson += content;
    }
    ndjson += '\n';
  }
  return ndjson;
}

int cmd_batch(const util::Cli& cli) {
  const std::string in_path = cli.get("in", "");
  const std::string dir = cli.get("dir", "");
  if (in_path.empty() == dir.empty()) {
    std::cerr << "batch: exactly one of --in=<file|-> or --dir=<dir> "
                 "required\n";
    return kExitUsage;
  }

  batch::BatchOptions options;
  options.algorithm = cli.get("algorithm", "window");
  // run_batch re-validates, but an unknown algorithm is a usage error here
  // (exit 2), before any input is touched — same policy as `solve`.
  if (options.algorithm != "window" && options.algorithm != "unit" &&
      options.algorithm != "improved" && options.algorithm != "gg" &&
      options.algorithm != "equalsplit" && options.algorithm != "sequential" &&
      options.algorithm != "multires") {
    std::cerr << "batch: unknown --algorithm=" << options.algorithm << "\n";
    return kExitUsage;
  }
  const std::int64_t threads = cli.get_int(
      "threads", static_cast<std::int64_t>(util::default_threads()));
  const std::int64_t queue = cli.get_int("queue", 64);
  if (threads < 1 || queue < 1) {
    std::cerr << "batch: --threads and --queue must be >= 1\n";
    return kExitUsage;
  }
  options.threads = static_cast<std::size_t>(threads);
  options.queue_capacity = static_cast<std::size_t>(queue);
  options.emit_schedules = cli.has("emit-schedules");
  const std::int64_t deadline_steps = cli.get_int("deadline-steps", 0);
  const std::int64_t deadline_ms = cli.get_int("deadline-ms", 0);
  if (deadline_steps < 0 || deadline_ms < 0) {
    std::cerr << "batch: --deadline-steps and --deadline-ms must be >= 0\n";
    return kExitUsage;
  }
  options.default_deadline_steps = static_cast<std::uint64_t>(deadline_steps);
  options.deadline_ms = static_cast<std::uint64_t>(deadline_ms);
  if (cli.has("cache")) {
    // Bare --cache (stored as "true") selects the default capacity;
    // --cache=N pins it. --cache=0 is explicit off.
    const std::int64_t capacity =
        cli.get("cache", "") == "true" ? 1024 : cli.get_int("cache", 0);
    if (capacity < 0) {
      std::cerr << "batch: --cache must be >= 0\n";
      return kExitUsage;
    }
    options.cache_capacity = static_cast<std::size_t>(capacity);
  }

  const std::string out_path = cli.get("out", "");
  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path);
    if (!out_file) {
      std::cerr << "cannot open " << out_path << "\n";
      return kExitInput;
    }
  }
  std::ostream& out = out_path.empty() ? std::cout : out_file;

  batch::BatchSummary summary;
  if (!dir.empty()) {
    if (!std::filesystem::is_directory(dir)) {
      std::cerr << "cannot open directory " << dir << "\n";
      return kExitInput;
    }
    std::istringstream in(slurp_instance_dir(dir));
    summary = batch::run_batch(in, out, options);
  } else if (in_path == "-") {
    summary = batch::run_batch(std::cin, out, options);
  } else {
    std::ifstream in(in_path);
    if (!in) {
      std::cerr << "cannot open " << in_path << "\n";
      return kExitInput;
    }
    summary = batch::run_batch(in, out, options);
  }
  if (!out_path.empty()) {
    std::cerr << "batch: " << summary.records << " records, " << summary.ok
              << " ok, " << summary.failed << " failed\n";
  }
  return summary.failed == 0 ? kExitOk : kExitInfeasible;
}

// ---- serve ----------------------------------------------------------------
//
// The persistent scheduling service (src/service, DESIGN.md §13). Stdio mode
// reads request lines from stdin and answers on stdout; --socket=PATH serves
// a unix domain socket instead. SIGTERM/SIGINT trigger a graceful drain:
// stop accepting, finish every admitted request, write the summary line,
// exit 0.
//
// Signal handlers may only touch async-signal-safe state, so they write one
// byte into this self-pipe; the serve loops poll it alongside their input.
int g_signal_pipe[2] = {-1, -1};

extern "C" void serve_signal_handler(int) {
  const char byte = 0;
  (void)!write(g_signal_pipe[1], &byte, 1);
}

// True once a drain signal has arrived (consumes the pipe byte).
bool signal_seen() {
  pollfd p{g_signal_pipe[0], POLLIN, 0};
  if (::poll(&p, 1, 0) <= 0) return false;
  char byte;
  (void)!::read(g_signal_pipe[0], &byte, 1);
  return true;
}

int cmd_serve(const util::Cli& cli) {
  service::ServiceOptions options;
  options.algorithm = cli.get("algorithm", "window");
  if (options.algorithm != "window" && options.algorithm != "unit" &&
      options.algorithm != "improved" && options.algorithm != "gg" &&
      options.algorithm != "equalsplit" && options.algorithm != "sequential" &&
      options.algorithm != "multires") {
    std::cerr << "serve: unknown --algorithm=" << options.algorithm << "\n";
    return kExitUsage;
  }
  const std::int64_t threads = cli.get_int(
      "threads", static_cast<std::int64_t>(util::default_threads()));
  const std::int64_t queue = cli.get_int("queue", 64);
  const std::int64_t shed = cli.get_int("shed-high-water", 0);
  const std::int64_t deadline_steps = cli.get_int("deadline-steps", 0);
  const std::int64_t deadline_ms = cli.get_int("deadline-ms", 0);
  const std::int64_t max_conns = cli.get_int("max-connections", 64);
  if (threads < 1 || queue < 1) {
    std::cerr << "serve: --threads and --queue must be >= 1\n";
    return kExitUsage;
  }
  if (shed < 0 || deadline_steps < 0 || deadline_ms < 0 || max_conns < 1) {
    std::cerr << "serve: --shed-high-water/--deadline-steps/--deadline-ms "
                 "must be >= 0, --max-connections >= 1\n";
    return kExitUsage;
  }
  options.threads = static_cast<std::size_t>(threads);
  options.queue_capacity = static_cast<std::size_t>(queue);
  options.shed_high_water = static_cast<std::size_t>(shed);
  options.default_deadline_steps =
      static_cast<std::uint64_t>(deadline_steps);
  options.deadline_ms = static_cast<std::uint64_t>(deadline_ms);
  options.emit_schedules = cli.has("emit-schedules");
  options.journal_path = cli.get("journal", "");
  options.journal_fsync = cli.has("journal-fsync");
  if (cli.has("cache")) {
    // Same spelling as batch: bare --cache selects the default capacity,
    // --cache=N pins it, --cache=0 is explicit off. The cache is shared
    // across all client connections (ServiceOptions::cache_capacity).
    const std::int64_t capacity =
        cli.get("cache", "") == "true" ? 1024 : cli.get_int("cache", 0);
    if (capacity < 0) {
      std::cerr << "serve: --cache must be >= 0\n";
      return kExitUsage;
    }
    options.cache_capacity = static_cast<std::size_t>(capacity);
  }
  const bool replay = cli.has("replay");
  const std::string socket_path = cli.get("socket", "");
  if (replay && options.journal_path.empty()) {
    std::cerr << "serve: --replay requires --journal=<path>\n";
    return kExitUsage;
  }

  // A client that disappears must surface as a write error on its own
  // connection, never as process death.
  ::signal(SIGPIPE, SIG_IGN);
  if (::pipe(g_signal_pipe) != 0) {
    throw util::Error::io("serve: cannot create signal pipe");
  }
  struct sigaction sa{};
  sa.sa_handler = serve_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  // Read the journal BEFORE the service reopens it for appending: replayed
  // lines must not be re-journaled (Service::replay never appends, but the
  // admitted set has to be snapshotted from the previous life).
  service::Journal::Replay journaled;
  if (replay) {
    journaled = service::Journal::read_admitted(options.journal_path);
    if (journaled.torn_tail) {
      std::cerr << "serve: journal has a torn final line (crash artifact); "
                   "ignoring it\n";
    }
  }

  service::Service service(options);  // throws kIo -> exit 3 via main

  if (!socket_path.empty()) {
    service::SocketServer server(service, socket_path,
                                 static_cast<std::size_t>(max_conns));
    // Replay answers on stdout: the restarted daemon's operator sees the
    // reproduced prefix even though the original connections are gone.
    if (!journaled.lines.empty()) {
      auto replay_client = service.open_client([](const std::string& line) {
        std::cout << line << '\n';
        std::cout.flush();
        return static_cast<bool>(std::cout);
      });
      service.replay(replay_client, journaled.lines);
    }
    std::cerr << "serve: listening on " << socket_path << "\n";
    // Watcher: turn the (async-signal-safe) pipe byte into a drain. run()
    // returns only after stop(), so the watcher is also what ends serving.
    std::thread watcher([&] {
      pollfd p{g_signal_pipe[0], POLLIN, 0};
      while (::poll(&p, 1, -1) < 0 && errno == EINTR) {
      }
      service.begin_drain();
      server.stop();
    });
    server.run();
    server.stop();  // idempotent; covers a run() exit not caused by stop()
    serve_signal_handler(0);  // unblock the watcher if no signal ever came
    watcher.join();
    const service::ServiceSummary summary = service.finish();
    std::cout << service::Service::summary_line(summary) << "\n";
    return kExitOk;
  }

  // Stdio mode: one client, stdin lines in, stdout lines out. Reading goes
  // through poll + read(2) so a drain signal wakes the loop immediately
  // instead of racing C++ stream internals.
  auto client = service.open_client([](const std::string& line) {
    std::cout << line << '\n';
    std::cout.flush();  // kill-mid-stream must leave a valid prefix
    return static_cast<bool>(std::cout);
  });
  if (!journaled.lines.empty()) service.replay(client, journaled.lines);

  std::string buf;
  char chunk[4096];
  bool eof = false;
  while (!eof && !service.draining()) {
    pollfd fds[2] = {{STDIN_FILENO, POLLIN, 0}, {g_signal_pipe[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) {
      service.begin_drain();  // stop accepting; unread stdin is abandoned
      break;
    }
    if (fds[0].revents == 0) continue;
    const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      eof = true;
      break;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buf.find('\n', start); nl != std::string::npos;
         nl = buf.find('\n', start)) {
      service.submit(client, buf.substr(start, nl - start));
      start = nl + 1;
      if (signal_seen()) {
        service.begin_drain();
        break;
      }
    }
    buf.erase(0, start);
  }
  if (eof && !buf.empty()) service.submit(client, buf);

  const service::ServiceSummary summary = service.finish();
  std::cout << service::Service::summary_line(summary) << "\n";
  std::cout.flush();
  return kExitOk;
}

// ---- loadgen --------------------------------------------------------------
//
// Closed-loop load generator for the daemon (DESIGN.md §14): generates a
// seed-deterministic traffic stream (workloads/traffic.hpp), paces it onto
// the service's unix socket at a target request rate, and measures what the
// service actually delivered — one typed response per request, classified
// (ok / shed / deadline_exceeded / other error / status probe), with
// p50/p95/p99 response latency over the data requests.
//
// Closed loop: at most --window requests are in flight at once; the writer
// blocks until the reader frees a slot. That models clients that wait for
// answers, keeps an overloaded daemon from absorbing an unbounded backlog
// through socket buffers, and makes the measured latency a response time
// (send → matching response) rather than a queue-drain artifact. The
// per-connection ordering guarantee of the service makes response matching
// positional: the i-th response line answers the i-th line sent.

struct LoadgenOutcomes {
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline = 0;
  std::uint64_t errors = 0;  ///< other typed error lines
  std::uint64_t status = 0;  ///< status-probe responses
};

/// Nearest-rank percentile over ascending `sorted`: the smallest value with
/// at least q·n observations at or below it (EXPERIMENTS.md E16).
double percentile_ms(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const auto idx = static_cast<std::size_t>(
      std::max(1.0, std::min(rank, static_cast<double>(sorted.size()))));
  return sorted[idx - 1];
}

int cmd_loadgen(const util::Cli& cli) {
  const std::string socket_path = cli.get("socket", "");
  if (socket_path.empty()) {
    std::cerr << "loadgen: --socket=<path> required\n";
    return kExitUsage;
  }
  workloads::TrafficStreamConfig stream_cfg;
  stream_cfg.family = cli.get("family", "uniform");
  stream_cfg.sos.machines = static_cast<int>(cli.get_int("machines", 8));
  stream_cfg.sos.capacity = cli.get_int("capacity", 1'000'000);
  stream_cfg.sos.jobs = static_cast<std::size_t>(cli.get_int("jobs", 24));
  stream_cfg.sos.max_size = cli.get_int("max-size", 4);
  stream_cfg.sos.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  stream_cfg.requests = static_cast<std::size_t>(cli.get_int("requests", 64));
  stream_cfg.id_prefix = cli.get("id-prefix", "req");
  const std::int64_t deadline_steps = cli.get_int("deadline-steps", 0);
  // Arrival process shape. arrivals.rate is the mean per STEP (shape knob);
  // --rate=R maps steps onto wall time so the long-run send rate is R
  // requests/second. --rate=0 sends as fast as the window allows.
  stream_cfg.arrivals.rate = cli.get_double("per-step", 1.0);
  stream_cfg.arrivals.seed = stream_cfg.sos.seed ^ 0xa5a5a5a5a5a5a5a5ULL;
  const double rate = cli.get_double("rate", 0.0);
  const std::int64_t window = cli.get_int("window", 64);
  const std::int64_t status_every = cli.get_int("status-every", 0);
  if (stream_cfg.requests < 1 || window < 1 || deadline_steps < 0 ||
      rate < 0.0 || status_every < 0) {
    std::cerr << "loadgen: --requests/--window must be >= 1, "
                 "--rate/--deadline-steps/--status-every >= 0\n";
    return kExitUsage;
  }
  stream_cfg.deadline_steps = static_cast<std::uint64_t>(deadline_steps);
  try {
    stream_cfg.arrivals.kind =
        online::parse_arrival_kind(cli.get("process", "poisson"));
  } catch (const std::invalid_argument& e) {
    std::cerr << "loadgen: " << e.what() << "\n";
    return kExitUsage;
  }

  const std::vector<std::string> lines =
      workloads::traffic_stream(stream_cfg);  // invalid_argument -> exit 3
  const std::string emit_stream = cli.get("emit-stream", "");
  if (!emit_stream.empty()) {
    std::ofstream f(emit_stream);
    if (!f) {
      std::cerr << "cannot open " << emit_stream << "\n";
      return kExitInput;
    }
    for (const std::string& line : lines) f << line << "\n";
  }

  // Arrival step of each request (re-derived: the stream embeds it, but the
  // config is authoritative and cheaper than re-parsing).
  const std::vector<core::Time> steps =
      online::arrival_times(stream_cfg.arrivals, stream_cfg.requests);
  // step → wall seconds: mean per-step arrivals / target rate.
  const double step_seconds =
      rate > 0.0 ? stream_cfg.arrivals.rate / rate : 0.0;

  ::signal(SIGPIPE, SIG_IGN);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw util::Error::io("loadgen: cannot create socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    std::cerr << "loadgen: socket path too long\n";
    return kExitUsage;
  }
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                socket_path.c_str());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw util::Error::io("loadgen: cannot connect to " + socket_path);
  }

  using Clock = std::chrono::steady_clock;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Clock::time_point> sent_at;  // guarded by mu
  std::vector<double> data_latency_ms;     // reader-only until join
  LoadgenOutcomes outcomes;                // reader-only until join
  std::size_t received = 0;                // guarded by mu
  bool peer_closed = false;                // guarded by mu

  std::thread reader([&] {
    std::string buf;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (std::size_t nl = buf.find('\n', start); nl != std::string::npos;
           nl = buf.find('\n', start)) {
        const std::string line = buf.substr(start, nl - start);
        start = nl + 1;
        const Clock::time_point now = Clock::now();
        Clock::time_point sent;
        {
          const std::lock_guard<std::mutex> lock(mu);
          if (received >= sent_at.size()) {
            // More responses than requests: the one-response-per-request
            // contract is broken. Count it and let the caller's totals
            // expose the mismatch.
            ++received;
            cv.notify_all();
            ++outcomes.errors;
            continue;
          }
          sent = sent_at[received];
          ++received;
        }
        cv.notify_all();
        const double ms =
            std::chrono::duration<double, std::milli>(now - sent).count();
        bool is_status = false, is_ok = false;
        std::string code;
        try {
          const util::Json doc = util::Json::parse(line);
          is_status = doc.is_object() && doc.contains("status");
          is_ok = doc.is_object() && doc.contains("ok") &&
                  doc.at("ok").is_bool() && doc.at("ok").as_bool();
          if (doc.is_object() && doc.contains("error") &&
              doc.at("error").is_object() &&
              doc.at("error").contains("code")) {
            code = doc.at("error").at("code").as_string();
          }
        } catch (const util::Error&) {
          // Unparseable response line: counted as an error below.
        }
        if (is_status) {
          ++outcomes.status;
        } else if (is_ok) {
          ++outcomes.ok;
          data_latency_ms.push_back(ms);
        } else if (code == "shed") {
          ++outcomes.shed;
          data_latency_ms.push_back(ms);
        } else if (code == "deadline_exceeded") {
          ++outcomes.deadline;
          data_latency_ms.push_back(ms);
        } else {
          ++outcomes.errors;
          data_latency_ms.push_back(ms);
        }
      }
      buf.erase(0, start);
    }
    const std::lock_guard<std::mutex> lock(mu);
    peer_closed = true;
    cv.notify_all();
  });

  const auto send_line = [&](const std::string& line) -> bool {
    // Closed loop: wait for a window slot (or the peer dying).
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] {
      return peer_closed ||
             sent_at.size() - received < static_cast<std::size_t>(window);
    });
    if (peer_closed) return false;
    sent_at.push_back(Clock::now());
    lock.unlock();
    std::string framed = line;
    framed += '\n';
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n =
          ::write(fd, framed.data() + off, framed.size() - off);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  };

  const Clock::time_point t0 = Clock::now();
  std::size_t sent_data = 0;
  std::size_t sent_probes = 0;
  bool send_failed = false;
  for (std::size_t k = 0; k < lines.size(); ++k) {
    if (step_seconds > 0.0) {
      const auto due =
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(
                       static_cast<double>(steps[k] - 1) * step_seconds));
      std::this_thread::sleep_until(due);
    }
    if (!send_line(lines[k])) {
      send_failed = true;
      break;
    }
    ++sent_data;
    if (status_every > 0 &&
        sent_data % static_cast<std::size_t>(status_every) == 0) {
      if (!send_line("{\"status\":true}")) {
        send_failed = true;
        break;
      }
      ++sent_probes;
    }
  }
  // No more requests: close the write side so the daemon sees EOF on this
  // connection once the in-flight tail drains.
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return peer_closed || received >= sent_at.size(); });
  }
  ::shutdown(fd, SHUT_RDWR);
  reader.join();
  ::close(fd);
  const double duration_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::sort(data_latency_ms.begin(), data_latency_ms.end());
  const std::size_t sent_total = sent_data + sent_probes;
  const std::uint64_t responses = outcomes.ok + outcomes.shed +
                                  outcomes.deadline + outcomes.errors +
                                  outcomes.status;
  double sum = 0.0;
  for (const double ms : data_latency_ms) sum += ms;

  util::Json doc{util::Json::Object{}};
  doc.emplace("loadgen", true);
  doc.emplace("process", online::to_string(stream_cfg.arrivals.kind));
  doc.emplace("family", stream_cfg.family);
  doc.emplace("requests", static_cast<std::uint64_t>(sent_data));
  doc.emplace("status_probes", static_cast<std::uint64_t>(sent_probes));
  doc.emplace("responses", responses);
  doc.emplace("ok", outcomes.ok);
  doc.emplace("shed", outcomes.shed);
  doc.emplace("deadline_exceeded", outcomes.deadline);
  doc.emplace("errors", outcomes.errors);
  doc.emplace("status_responses", outcomes.status);
  doc.emplace("p50_ms", percentile_ms(data_latency_ms, 0.50));
  doc.emplace("p95_ms", percentile_ms(data_latency_ms, 0.95));
  doc.emplace("p99_ms", percentile_ms(data_latency_ms, 0.99));
  doc.emplace("max_ms", data_latency_ms.empty() ? 0.0
                                                : data_latency_ms.back());
  doc.emplace("mean_ms", data_latency_ms.empty()
                             ? 0.0
                             : sum / static_cast<double>(
                                         data_latency_ms.size()));
  doc.emplace("duration_s", duration_s);
  doc.emplace("achieved_rps",
              duration_s > 0.0
                  ? static_cast<double>(sent_data) / duration_s
                  : 0.0);
  doc.emplace("send_failed", send_failed);
  // The acceptance criterion: every request got exactly one response.
  const bool complete = !send_failed && responses == sent_total;
  doc.emplace("complete", complete);

  const std::string out_path = cli.get("out", "");
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    if (!f) {
      std::cerr << "cannot open " << out_path << "\n";
      return kExitInput;
    }
    f << doc.dump(2) << "\n";
  }
  std::cout << doc.dump() << "\n";
  return complete ? kExitOk : kExitInfeasible;
}

// ---- failpoints -----------------------------------------------------------

int cmd_failpoints(const util::Cli& cli) {
  (void)cli;  // --list is the only (default) action
  if (!util::failpoint::compiled_in()) {
    std::cout << "failpoints: compiled out "
                 "(configure with -DSHAREDRES_FAILPOINTS=ON)\n";
    return kExitOk;
  }
  std::cout << "# site mode hits fires  (armed via SHAREDRES_FAILPOINTS="
               "site=throw[@k|@every:N|@prob:P[,seed:S]];...)\n";
  for (const util::failpoint::SiteInfo& info : util::failpoint::catalog()) {
    std::cout << info.site << ' ' << (info.armed ? info.mode : "unarmed")
              << ' ' << info.hits << ' ' << info.fires << '\n';
  }
  return kExitOk;
}

int cmd_solve(const util::Cli& cli) {
  const std::string path = cli.get("instance", "");
  if (path.empty()) {
    std::cerr << "solve: --instance=<file> required\n";
    return kExitUsage;
  }
  // Validate flags before touching the filesystem: a typo in --algorithm is
  // a usage error (exit 2) even when the instance file is also bad.
  const std::string algorithm = cli.get("algorithm", "window");
  if (algorithm != "window" && algorithm != "unit" &&
      algorithm != "improved" && algorithm != "gg" &&
      algorithm != "equalsplit" && algorithm != "sequential" &&
      algorithm != "multires") {
    std::cerr << "solve: unknown --algorithm=" << algorithm << "\n";
    return kExitUsage;
  }
  // --parallel=N engages the descriptor-parallel unit engine with N workers
  // (0 = scalar, the default). Unit-only: no other algorithm has a parallel
  // path, and silently ignoring the flag would misreport an experiment.
  const std::int64_t parallel = cli.get_int("parallel", 0);
  if (parallel < 0) {
    std::cerr << "solve: --parallel must be >= 0\n";
    return kExitUsage;
  }
  if (parallel > 0 && algorithm != "unit") {
    std::cerr << "solve: --parallel requires --algorithm=unit\n";
    return kExitUsage;
  }
  const core::Instance inst = io::load_instance(path);

  core::Schedule schedule;
  if (algorithm == "window") {
    schedule = core::schedule_sos(inst);
  } else if (algorithm == "unit") {
    core::SosOptions options;
    if (parallel > 0) {
      options.parallel_threads = static_cast<std::size_t>(parallel);
      // The CLI flag is an explicit request: engage regardless of size so
      // identity scripts can diff small instances through the fast path.
      options.parallel_min_jobs = 0;
    }
    schedule = core::schedule_sos_unit(inst, options);
  } else if (algorithm == "improved") {
    schedule = core::schedule_improved(inst);
  } else if (algorithm == "gg") {
    schedule = baselines::schedule_garey_graham(inst);
  } else if (algorithm == "equalsplit") {
    schedule = baselines::schedule_equal_split(inst);
  } else if (algorithm == "sequential") {
    schedule = baselines::schedule_sequential(inst);
  } else if (algorithm == "multires") {
    schedule = core::schedule_multires(inst);
  } else {
    std::cerr << "solve: unknown --algorithm=" << algorithm << "\n";
    return kExitUsage;
  }

  const auto check = core::validate(inst, schedule);
  if (!check.ok) {
    std::cerr << "internal error: produced invalid schedule: " << check.error
              << "\n";
    return kExitInfeasible;
  }
  const core::LowerBounds lb = core::lower_bounds(inst);
  std::cout << "algorithm:    " << algorithm << "\n"
            << "jobs:         " << inst.size() << "\n"
            << "machines:     " << inst.machines() << "\n"
            << "makespan:     " << schedule.makespan() << "\n"
            << "lower bound:  " << lb.combined() << "\n"
            << "ratio vs LB:  "
            << static_cast<double>(schedule.makespan()) /
                   static_cast<double>(std::max<core::Time>(1, lb.combined()))
            << "\n";

  if (cli.has("gantt")) {
    std::cout << "\n" << sim::render_gantt(inst.size(), schedule);
    std::cout << "util "
              << sim::render_utilization(schedule, inst.capacity()) << "\n";
  }
  if (cli.has("stats")) {
    std::cout << "\n" << sim::to_string(sim::analyze(inst, schedule));
  }
  const std::string svg = cli.get("svg", "");
  if (!svg.empty()) {
    sim::save_svg(svg, inst, schedule);
    std::cout << "SVG written to " << svg << "\n";
  }
  const std::string out = cli.get("out", "");
  if (!out.empty()) {
    io::save_schedule(out, schedule);
    std::cout << "schedule written to " << out << "\n";
  }
  return kExitOk;
}

int cmd_validate(const util::Cli& cli) {
  const std::string inst_path = cli.get("instance", "");
  const std::string sched_path = cli.get("schedule", "");
  if (inst_path.empty() || sched_path.empty()) {
    std::cerr << "validate: --instance=<file> --schedule=<file> required\n";
    return kExitUsage;
  }
  const bool json = cli.has("json");
  const auto max_violations =
      static_cast<std::size_t>(cli.get_int("max-violations", 1024));
  const core::Instance inst = io::load_instance(inst_path);
  const core::Schedule schedule = io::load_schedule(sched_path);
  if (json) {
    core::ValidationReport report =
        core::validate_all(inst, schedule, max_violations);
    util::Json doc = core::to_json(report);
    doc.emplace("makespan", schedule.makespan());
    std::cout << doc.dump(2) << "\n";
    return report.ok() ? kExitOk : kExitInfeasible;
  }
  const auto check = core::validate(inst, schedule);
  if (check.ok) {
    std::cout << "OK: feasible schedule, makespan " << schedule.makespan()
              << "\n";
    return kExitOk;
  }
  std::cout << "INVALID: " << check.error << "\n";
  return kExitInfeasible;
}

int cmd_bounds(const util::Cli& cli) {
  const std::string path = cli.get("instance", "");
  if (path.empty()) {
    std::cerr << "bounds: --instance=<file> required\n";
    return kExitUsage;
  }
  const core::Instance inst = io::load_instance(path);
  const core::LowerBounds lb = core::lower_bounds(inst);
  std::cout << "resource (⌈Σs/C⌉):      " << lb.resource << "\n"
            << "volume (⌈Σp/m⌉):        " << lb.volume << "\n"
            << "longest job:            " << lb.longest_job << "\n"
            << "combined lower bound:   " << lb.combined() << "\n";
  if (inst.machines() >= 3) {
    std::cout << "Theorem 3.3 ratio:      "
              << core::sos_ratio_bound(inst.machines()).to_double() << "\n";
  }
  return kExitOk;
}

int cmd_pack(const util::Cli& cli) {
  const std::string path = cli.get("instance", "");
  if (path.empty()) {
    std::cerr << "pack: --instance=<packing file> required\n";
    return kExitUsage;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return kExitInput;
  }
  const binpack::PackingInstance inst = io::read_packing_instance(in);
  const std::string algorithm = cli.get("algorithm", "window");

  binpack::Packing packing;
  if (algorithm == "window") {
    packing = binpack::sliding_window_packing(inst);
  } else if (algorithm == "nextfit") {
    packing = binpack::next_fit_packing(inst);
  } else if (algorithm == "nfd") {
    packing = binpack::next_fit_packing(inst, true);
  } else if (algorithm == "ffd") {
    packing = binpack::first_fit_decreasing_packing(inst);
  } else if (algorithm == "pairing") {
    packing = binpack::pairing_packing(inst);
  } else {
    std::cerr << "pack: unknown --algorithm=" << algorithm << "\n";
    return kExitUsage;
  }
  const auto check = binpack::validate(inst, packing);
  if (!check.ok) {
    std::cerr << "internal error: invalid packing: " << check.error << "\n";
    return kExitInfeasible;
  }
  const auto lb = binpack::packing_lower_bounds(inst);
  std::cout << "algorithm:    " << algorithm << "\n"
            << "items:        " << inst.items.size() << "\n"
            << "cardinality:  " << inst.cardinality << "\n"
            << "bins:         " << packing.bin_count() << "\n"
            << "lower bound:  " << lb.combined() << "\n"
            << "ratio vs LB:  "
            << static_cast<double>(packing.bin_count()) /
                   static_cast<double>(std::max<std::size_t>(1, lb.combined()))
            << "\n";
  const std::string out = cli.get("out", "");
  if (!out.empty()) {
    std::ofstream os(out);
    if (!os) {
      std::cerr << "cannot open " << out << "\n";
      return kExitInput;
    }
    io::write_packing(os, packing);
    std::cout << "packing written to " << out << "\n";
  }
  return kExitOk;
}

std::vector<core::Res> parse_weights(const std::string& spec) {
  std::vector<core::Res> weights;
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    try {
      std::size_t pos = 0;
      const core::Res w = std::stoll(tok, &pos);
      if (pos != tok.size()) {
        throw util::Error::cli("weights", "bad weight '" + tok + "'");
      }
      weights.push_back(w);
    } catch (const std::logic_error&) {
      throw util::Error::cli("weights", "bad weight '" + tok + "'");
    }
  }
  return weights;
}

int cmd_sas(const util::Cli& cli) {
  const std::string path = cli.get("instance", "");
  if (path.empty()) {
    std::cerr << "sas: --instance=<sas file> required\n";
    return kExitUsage;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return kExitInput;
  }
  const sas::SasInstance inst = io::read_sas(in);
  const std::string weight_spec = cli.get("weights", "");

  sas::SasResult result;
  if (weight_spec.empty()) {
    result = sas::schedule_sas(inst);
  } else {
    result = sas::schedule_sas_weighted(inst, parse_weights(weight_spec));
  }
  const auto check = sas::validate(inst, result);
  if (!check.ok) {
    std::cerr << "internal error: invalid SAS schedule: " << check.error
              << "\n";
    return kExitInfeasible;
  }
  std::cout << "tasks:               " << inst.tasks.size() << "\n"
            << "machines:            " << inst.machines << "\n"
            << "sum of completions:  " << result.sum_completion << "\n"
            << "lower bound:         " << sas::sas_lower_bound(inst) << "\n";
  if (!weight_spec.empty()) {
    const auto weights = parse_weights(weight_spec);
    std::cout << "weighted objective:  "
              << sas::weighted_objective(result, weights) << "\n"
              << "weighted LB:         "
              << sas::weighted_lower_bound(inst, weights) << "\n";
  }
  for (std::size_t i = 0; i < inst.tasks.size(); ++i) {
    std::cout << "  task " << i << " (T" << result.task_class[i]
              << ", " << inst.tasks[i].size() << " jobs): finishes at "
              << result.completion[i] << "\n";
  }
  return kExitOk;
}

}  // namespace

/// --metrics-json is honored on every exit path (including errors, so a
/// failed run still leaves its counters behind for diagnosis); a metrics
/// write failure must not mask the command's own exit code.
void maybe_save_metrics(const util::Cli& cli) {
  const std::string path = cli.get("metrics-json", "");
  if (path.empty()) return;
  try {
    obs::save_metrics(path);
  } catch (const std::exception& e) {
    std::cerr << "warning: cannot write metrics: " << e.what() << "\n";
  }
}

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const util::Cli cli(argc - 1, argv + 1);
  try {
    int rc = -1;
    if (command == "gen") rc = cmd_gen(cli);
    if (command == "solve") rc = cmd_solve(cli);
    if (command == "validate") rc = cmd_validate(cli);
    if (command == "bounds") rc = cmd_bounds(cli);
    if (command == "pack") rc = cmd_pack(cli);
    if (command == "sas") rc = cmd_sas(cli);
    if (command == "batch") rc = cmd_batch(cli);
    if (command == "serve") rc = cmd_serve(cli);
    if (command == "loadgen") rc = cmd_loadgen(cli);
    if (command == "failpoints") rc = cmd_failpoints(cli);
    if (rc >= 0) {
      maybe_save_metrics(cli);
      return rc;
    }
  } catch (const util::Error& e) {
    // The typed code picks the exit bucket: bad flags are usage errors,
    // everything else a typed throw can signal here came from the input.
    std::cerr << "error: " << e.what() << "\n";
    maybe_save_metrics(cli);
    return e.code() == util::ErrorCode::kCliUsage ? kExitUsage : kExitInput;
  } catch (const util::OverflowError& e) {
    std::cerr << "error: " << e.what() << "\n";
    maybe_save_metrics(cli);
    return kExitInput;
  } catch (const std::invalid_argument& e) {
    // Scheduler/generator preconditions (m >= 2, unknown family, ...) are
    // violated by what the user fed in, not by library bugs.
    std::cerr << "error: " << e.what() << "\n";
    maybe_save_metrics(cli);
    return kExitInput;
  } catch (const std::exception& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    maybe_save_metrics(cli);
    return kExitInfeasible;
  }
  return usage();
}
