// E1 — Theorem 3.3: measured approximation ratio of the sliding-window
// algorithm (general job sizes) against the Eq. (1) lower bound, across
// workload families and machine counts, with the Garey–Graham baseline for
// context. The "bound" column is the proven 2 + 1/(m−2).
//
// Usage: bench_ratio_sos [--jobs=N] [--capacity=C] [--seeds=K] [--csv]
//        [--threads=T] [--json-dir=DIR]
#include "baselines/baselines.hpp"
#include "core/lower_bounds.hpp"
#include "core/sos_scheduler.hpp"
#include "core/validator.hpp"
#include "harness.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/sos_generators.hpp"

namespace {

struct Cell {
  std::string family;
  int machines = 0;
};

struct CellResult {
  sharedres::util::Summary ratio;
  sharedres::util::Summary gg_ratio;
  bool all_valid = true;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sharedres;
  const util::Cli cli(argc, argv);
  bench::Harness h(cli, "bench_ratio_sos",
                   "E1 SoS approximation ratio vs Eq. (1) lower bound "
                   "(Theorem 3.3)");
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs", 400));
  const auto capacity = cli.get_int("capacity", 1'000'000);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 5));

  std::vector<Cell> cells;
  for (const std::string& family : workloads::instance_families()) {
    for (const int m : {3, 4, 6, 8, 16, 32, 64, 128}) {
      cells.push_back(Cell{family, m});
    }
  }

  // Cells are independent; fan them out (results collected in cell order,
  // so the table is identical to a serial run).
  const auto results = util::parallel_map<CellResult>(
      cells.size(),
      [&](std::size_t c) {
        const Cell& cell = cells[c];
        CellResult out;
        for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
          workloads::SosConfig cfg;
          cfg.machines = cell.machines;
          cfg.capacity = capacity;
          cfg.jobs = jobs;
          cfg.max_size = 5;
          cfg.seed = seed;
          const core::Instance inst =
              workloads::make_instance(cell.family, cfg);
          const core::Schedule s = core::schedule_sos(inst);
          out.all_valid = out.all_valid && core::validate(inst, s).ok;
          const double lb =
              core::lower_bounds(inst).combined_exact().to_double();
          out.ratio.add(static_cast<double>(s.makespan()) / lb);
          const core::Schedule gg = baselines::schedule_garey_graham(inst);
          out.gg_ratio.add(static_cast<double>(gg.makespan()) / lb);
        }
        return out;
      },
      h.threads());

  util::Table table({"family", "m", "n", "ratio_mean", "ratio_max",
                     "gg_ratio_mean", "bound", "valid"});
  for (std::size_t c = 0; c < cells.size(); ++c) {
    table.add(cells[c].family, cells[c].machines, jobs,
              util::fixed(results[c].ratio.mean()),
              util::fixed(results[c].ratio.max()),
              util::fixed(results[c].gg_ratio.mean()),
              util::fixed(core::sos_ratio_bound(cells[c].machines).to_double()),
              results[c].all_valid ? "yes" : "NO");
  }

  h.section(
      "E1  SoS approximation ratio vs Eq. (1) lower bound (Theorem 3.3)");
  h.table(table);
  return h.finish();
}
