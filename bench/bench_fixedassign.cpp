// E9 — the price of fixed assignment: the paper's model (Section 1.2's
// predecessor [3]) fixes jobs to processors; Section 3's contribution is to
// optimize the assignment too. This bench quantifies the gap: fixed greedy
// vs the free-assignment sliding window on the same job sets, plus the
// fixed greedy's true ratio against the exact fixed optimum on tiny
// instances.
//
// Usage: bench_fixedassign [--seeds=K] [--csv] [--json-dir=DIR]
#include "core/lower_bounds.hpp"
#include "core/sos_scheduler.hpp"
#include "fixedassign/fixed_model.hpp"
#include "fixedassign/fixed_scheduler.hpp"
#include "harness.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace sharedres;

fixedassign::FixedInstance random_fixed(std::size_t machines,
                                        std::size_t max_queue, core::Res cap,
                                        core::Res max_req, double skew,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  fixedassign::FixedInstance inst;
  inst.capacity = cap;
  inst.queues.resize(machines);
  for (std::size_t i = 0; i < machines; ++i) {
    // skew > 0 piles more work on low-index queues.
    const double factor = 1.0 + skew * static_cast<double>(machines - 1 - i);
    const auto jobs = static_cast<std::size_t>(rng.uniform_int(
        1, std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                         factor * static_cast<double>(
                                                      max_queue) /
                                         2.0))));
    for (std::size_t j = 0; j < jobs; ++j) {
      inst.queues[i].push_back(rng.uniform_int(1, max_req));
    }
  }
  return inst;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  sharedres::bench::Harness h(
      cli, "bench_fixedassign",
      "E9 price of fixed assignment ([3] model vs Section 3)");
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 10));

  util::Table table(
      {"workload", "m", "fixed/LB", "free/LB", "free_vs_fixed"});
  struct Row {
    const char* name;
    double skew;
  };
  for (const Row row : {Row{"balanced", 0.0}, Row{"skewed", 0.6}}) {
    for (const std::size_t m : {4u, 8u, 16u}) {
      util::Summary fixed_ratio, free_ratio, improvement;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const auto inst = random_fixed(m, 12, 100'000, 60'000, row.skew, seed);
        // Each variant is measured against its own valid lower bound: the
        // fixed bound includes per-queue serialization, which the free
        // relaxation is allowed to break.
        const auto fixed_lb =
            static_cast<double>(fixedassign::fixed_lower_bound(inst));
        const core::Instance relaxed = fixedassign::relax_to_sos(inst);
        const auto free_lb = static_cast<double>(
            core::lower_bounds(relaxed).combined());
        const auto fixed = static_cast<double>(
            fixedassign::schedule_fixed_greedy(inst).makespan());
        const auto free_assign =
            static_cast<double>(core::schedule_sos_unit(relaxed).makespan());
        fixed_ratio.add(fixed / fixed_lb);
        free_ratio.add(free_assign / free_lb);
        improvement.add(fixed / free_assign);
      }
      table.add(row.name, m, util::fixed(fixed_ratio.mean()),
                util::fixed(free_ratio.mean()),
                util::fixed(improvement.mean()));
    }
  }
  h.section("E9  Price of fixed assignment ([3] model vs Section 3)");
  h.table(table);

  // Tiny instances: greedy vs exact fixed optimum.
  util::Table tiny({"m", "solved", "greedy/OPT_mean", "greedy/OPT_max"});
  for (const std::size_t m : {2u, 3u}) {
    util::Summary ratio;
    int solved = 0;
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
      const auto inst = random_fixed(m, 3, 6, 8, 0.0, seed + 500);
      const auto opt = fixedassign::exact_fixed_makespan(inst);
      if (!opt) continue;
      ++solved;
      ratio.add(static_cast<double>(
                    fixedassign::schedule_fixed_greedy(inst).makespan()) /
                static_cast<double>(*opt));
    }
    tiny.add(m, solved, util::fixed(ratio.mean()), util::fixed(ratio.max()));
  }
  h.section(
      "Tiny instances vs exact fixed optimum ([3] prove 2-1/m for their "
      "greedy):");
  h.table(tiny);
  return h.finish();
}
