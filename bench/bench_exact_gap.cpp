// E8 — lower-bound tightness: on exhaustively solvable tiny instances,
// how close is the Eq. (1) bound to the true optimum, and how close does the
// approximation come to OPT (rather than to the bound)? Also compares the
// non-preemptive optimum with the preemptive relaxation (the bin-packing
// view), quantifying the "cost of non-preemption" the paper's Corollary 3.9
// argues is asymptotically negligible.
//
// Usage: bench_exact_gap [--instances=N] [--csv] [--json-dir=DIR]
#include "core/lower_bounds.hpp"
#include "core/sos_scheduler.hpp"
#include "exact/exact_sos.hpp"
#include "harness.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/sos_generators.hpp"

int main(int argc, char** argv) {
  using namespace sharedres;
  const util::Cli cli(argc, argv);
  bench::Harness h(cli, "bench_exact_gap",
                   "E8 Eq. (1) tightness and true approximation ratios on "
                   "exhaustively solved tiny instances");
  const auto count = static_cast<std::uint64_t>(cli.get_int("instances", 60));

  util::Table table({"m", "solved", "LB=OPT", "OPT/LB_max", "alg/OPT_mean",
                     "alg/OPT_max", "preempt_gain_max"});
  for (const int m : {2, 3, 4}) {
    util::Summary opt_over_lb, alg_over_opt, preempt_gain;
    int lb_tight = 0;
    int solved = 0;
    for (std::uint64_t seed = 1; seed <= count; ++seed) {
      const core::Instance inst =
          workloads::tiny_grid_instance(m, 6, 6, 2, seed);
      const auto opt = exact::exact_makespan(inst);
      const auto pre = exact::exact_makespan_preemptive(inst);
      if (!opt || !pre) continue;
      ++solved;
      const auto lb = core::lower_bounds(inst).combined();
      lb_tight += (lb == *opt);
      opt_over_lb.add(static_cast<double>(*opt) / static_cast<double>(lb));
      alg_over_opt.add(
          static_cast<double>(core::schedule_sos(inst).makespan()) /
          static_cast<double>(*opt));
      preempt_gain.add(static_cast<double>(*opt) /
                       static_cast<double>(*pre));
    }
    table.add(m, solved,
              util::fixed(static_cast<double>(lb_tight) /
                              static_cast<double>(solved),
                          3),
              util::fixed(opt_over_lb.max(), 3),
              util::fixed(alg_over_opt.mean(), 3),
              util::fixed(alg_over_opt.max(), 3),
              util::fixed(preempt_gain.max(), 3));
  }

  h.section(
      "E8  Eq. (1) tightness and true approximation ratios on exhaustively "
      "solved tiny instances");
  h.table(table);
  return h.finish();
}
