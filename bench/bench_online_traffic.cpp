// E16 — sustained traffic: stochastic arrival processes driven through the
// dynamic engine with irrevocable commits, measured by latency percentiles.
//
// For each arrival process (poisson, bursty, diurnal) × commitment policy
// (greedy, reservation), one seeded traffic instance is simulated job by
// job: the engine learns of every job at the last permissible step (release
// = now + 1), so nothing is scheduled with hindsight. Reported per cell:
// p50/p95/p99 flow time (nearest-rank over the exact per-job flow times),
// makespan, and resource utilization.
//
// The percentile gate: every reported number is a pure function of the
// configuration — the simulation is integer arithmetic over seeded PRNG
// draws, single-threaded by construction — so the same figures are exported
// as DETERMINISTIC gauges in the obs registry (traffic.<process>.<policy>.*,
// utilization scaled to parts-per-million to stay integral). CI runs this
// bench at SHAREDRES_THREADS 1/2/8 and requires the deterministic metric
// blocks to be exactly equal (scripts/check_bench_regression.py
// --equal-across), then compares against the checked-in baseline.
//
// The shape to expect: bursty arrivals stretch both policies' tails far
// beyond poisson/diurnal at the same mean rate. Within a burst backlog the
// two split the tail: greedy starts late arrivals immediately at reduced
// shares (lower p95), while reservation holds them back but runs each
// admitted job at full rate (it can undercut greedy at p99) — the same
// sharing-vs-exclusivity crossover E11 measures offline.
//
// Usage: bench_online_traffic [--requests=N] [--jobs-per=N] [--seeds=K]
//                             [--machines=M] [--reps=R] [--csv]
//                             [--json-dir=DIR]
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "harness.hpp"
#include "obs/registry.hpp"
#include "online/arrivals.hpp"
#include "online/dynamic.hpp"
#include "online/online_model.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/traffic.hpp"

namespace {

using namespace sharedres;

/// Nearest-rank percentile over ascending `sorted` (EXPERIMENTS.md E16):
/// the smallest element with at least q·n observations at or below it.
core::Time percentile(const std::vector<core::Time>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const auto idx = static_cast<std::size_t>(
      std::max(1.0, std::min(rank, static_cast<double>(sorted.size()))));
  return sorted[idx - 1];
}

struct CellResult {
  core::Time makespan = 0;
  core::Time p50 = 0;
  core::Time p95 = 0;
  core::Time p99 = 0;
  double utilization = 0.0;
};

/// Simulate one traffic instance with no hindsight: each job is submitted
/// exactly one step before its release, interleaved with step().
CellResult simulate(const online::OnlineInstance& inst,
                    online::DynamicPolicy policy) {
  online::DynamicEngine engine(inst.machines, inst.capacity, policy);
  // Arrival order is release-sorted by construction (traffic_instance), so
  // a single cursor suffices.
  std::size_t next = 0;
  while (next < inst.jobs.size() || !engine.idle()) {
    while (next < inst.jobs.size() &&
           inst.jobs[next].release == engine.now() + 1) {
      engine.submit(inst.jobs[next].release, inst.jobs[next].job);
      ++next;
    }
    engine.step();
  }
  CellResult r;
  r.makespan = engine.now();
  std::vector<core::Time> flows;
  flows.reserve(engine.stats().size());
  for (const online::DynamicJobStats& s : engine.stats()) {
    flows.push_back(s.flow_time());
  }
  std::sort(flows.begin(), flows.end());
  r.p50 = percentile(flows, 0.50);
  r.p95 = percentile(flows, 0.95);
  r.p99 = percentile(flows, 0.99);
  r.utilization = engine.utilization();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sharedres;
  const util::Cli cli(argc, argv);
  bench::Harness h(cli, "bench_online_traffic",
                   "E16 sustained traffic: arrival processes through the "
                   "dynamic engine, flow-time percentiles");
  const auto requests = static_cast<std::size_t>(cli.get_int("requests", 400));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const int machines = static_cast<int>(cli.get_int("machines", 8));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 1));

  const online::ArrivalKind kinds[] = {online::ArrivalKind::kPoisson,
                                       online::ArrivalKind::kBursty,
                                       online::ArrivalKind::kDiurnal};
  const std::pair<online::DynamicPolicy, const char*> policies[] = {
      {online::DynamicPolicy::kGreedy, "greedy"},
      {online::DynamicPolicy::kReservation, "reservation"},
  };

  util::Table table({"process", "policy", "jobs", "makespan", "util%", "p50",
                     "p95", "p99"});
  for (const online::ArrivalKind kind : kinds) {
    const std::string process = online::to_string(kind);
    for (const auto& [policy, policy_name] : policies) {
      // One deterministic representative cell (seed 1) feeds the gate; the
      // remaining seeds only widen the timing sample.
      CellResult gate;
      std::size_t gate_jobs = 0;
      const std::string label = process + "/" + policy_name;
      h.measure(label, reps, [&] {
        for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
          workloads::SosConfig cfg;
          cfg.machines = machines;
          cfg.capacity = 100'000;
          cfg.jobs = requests;
          cfg.max_size = 3;
          cfg.seed = seed;
          online::ArrivalConfig arrivals;
          arrivals.kind = kind;
          // Mean one arrival per step: a sustained load the policies can
          // serve without unbounded backlog, so the tail reflects transient
          // congestion (bursts, diurnal peaks), not saturation.
          arrivals.rate = 1.0;
          arrivals.seed = seed;
          const online::OnlineInstance inst =
              workloads::traffic_instance("uniform", cfg, arrivals);
          const CellResult r = simulate(inst, policy);
          if (seed == 1) {
            gate = r;
            gate_jobs = inst.jobs.size();
          }
        }
      }, static_cast<double>(requests * seeds));
      table.add(process, policy_name, gate_jobs, gate.makespan,
                util::fixed(100.0 * gate.utilization), gate.p50, gate.p95,
                gate.p99);
      // The deterministic percentile gate (see file comment). Direct
      // registry calls, not macros: these are bench-level facts, wanted
      // even in builds whose library instrumentation is compiled out.
      obs::Registry& reg = obs::Registry::global();
      const std::string prefix = "traffic." + process + "." + policy_name;
      reg.gauge(prefix + ".p50").set(gate.p50);
      reg.gauge(prefix + ".p95").set(gate.p95);
      reg.gauge(prefix + ".p99").set(gate.p99);
      reg.gauge(prefix + ".makespan").set(gate.makespan);
      reg.gauge(prefix + ".util_ppm")
          .set(static_cast<std::int64_t>(1e6 * gate.utilization));
    }
  }

  h.section(
      "E16  Sustained traffic: flow-time percentiles by arrival process "
      "and policy (seed 1)");
  h.table(table);
  return h.finish();
}
