// E6 — ablation: each ingredient of the window maintenance earns its keep.
// Variants: no GrowWindowLeft (breaks Property (e)), no MoveWindowRight
// (breaks Property (f)), no Case-2 extra job (wastes the reserved
// processor's leftover). All variants still emit feasible schedules; the
// table shows the makespan inflation each one costs per workload family.
//
// Usage: bench_ablation [--jobs=N] [--seeds=K] [--csv] [--json-dir=DIR]
#include "core/lower_bounds.hpp"
#include "core/sos_engine.hpp"
#include "core/validator.hpp"
#include "harness.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/sos_generators.hpp"

namespace {

using namespace sharedres;

core::Time run_variant(const core::Instance& inst, bool grow_left,
                       bool move_right, bool extra_job) {
  const bool ablated = !(grow_left && move_right && extra_job);
  core::SosEngine engine(
      inst, {.window_cap = static_cast<std::size_t>(inst.machines() - 1),
             .budget = inst.capacity(),
             .allow_extra_job = extra_job,
             .grow_left = grow_left,
             .move_right = move_right,
             // Ablated variants can genuinely break the paper's window
             // invariants (that is the point); run them permissively.
             .strict = !ablated});
  core::Schedule schedule;
  engine.run(schedule);
  core::validate_or_throw(inst, schedule);
  return schedule.makespan();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::Harness h(cli, "bench_ablation",
                   "E6 ablation of the window-maintenance ingredients "
                   "(ratios vs Eq. (1) lower bound)");
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs", 300));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 5));

  util::Table table({"family", "m", "full/LB", "no_growleft/LB",
                     "no_moveright/LB", "no_extra/LB"});
  for (const std::string& family : workloads::instance_families()) {
    for (const int m : {4, 8, 16}) {
      util::Summary full, no_gl, no_mr, no_extra;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        workloads::SosConfig cfg;
        cfg.machines = m;
        cfg.capacity = 1'000'000;
        cfg.jobs = jobs;
        cfg.max_size = 4;
        cfg.seed = seed;
        const core::Instance inst = workloads::make_instance(family, cfg);
        const double lb =
            core::lower_bounds(inst).combined_exact().to_double();
        full.add(static_cast<double>(run_variant(inst, true, true, true)) /
                 lb);
        no_gl.add(static_cast<double>(run_variant(inst, false, true, true)) /
                  lb);
        no_mr.add(static_cast<double>(run_variant(inst, true, false, true)) /
                  lb);
        no_extra.add(
            static_cast<double>(run_variant(inst, true, true, false)) / lb);
      }
      table.add(family, m, util::fixed(full.mean()), util::fixed(no_gl.mean()),
                util::fixed(no_mr.mean()), util::fixed(no_extra.mean()));
    }
  }

  h.section(
      "E6  Ablation of the window-maintenance ingredients (ratios vs "
      "Eq. (1) lower bound)");
  h.table(table);
  return h.finish();
}
