// E3 — running time: Theorem 3.3 claims O((m+n)·n) for the fast-forward
// implementation. google-benchmark sweeps n and m for the general and the
// unit-size engines plus the stepwise reference on small inputs.
#include <benchmark/benchmark.h>

#include "core/sos_scheduler.hpp"
#include "workloads/sos_generators.hpp"

namespace {

using namespace sharedres;

core::Instance instance_for(std::size_t n, int m, core::Res max_size,
                            std::uint64_t seed) {
  workloads::SosConfig cfg;
  cfg.machines = m;
  cfg.capacity = 1'000'000;
  cfg.jobs = n;
  cfg.max_size = max_size;
  cfg.seed = seed;
  return workloads::uniform_instance(cfg);
}

void BM_ScheduleSos(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<int>(state.range(1));
  const core::Instance inst = instance_for(n, m, 5, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_sos(inst).makespan());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}

void BM_ScheduleSosUnit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<int>(state.range(1));
  const core::Instance inst = instance_for(n, m, 1, 43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_sos_unit(inst).makespan());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}

void BM_ScheduleSosStepwise(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::Instance inst = instance_for(n, 8, 3, 44);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::schedule_sos(inst, {.fast_forward = false}).makespan());
  }
}

}  // namespace

BENCHMARK(BM_ScheduleSos)
    ->ArgsProduct({{1'000, 4'000, 16'000, 64'000, 256'000}, {4, 16, 64}})
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oNSquared);

BENCHMARK(BM_ScheduleSosUnit)
    ->ArgsProduct({{1'000, 4'000, 16'000, 64'000, 256'000}, {4, 16, 64}})
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oNSquared);

BENCHMARK(BM_ScheduleSosStepwise)
    ->Arg(500)
    ->Arg(1'000)
    ->Arg(2'000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
