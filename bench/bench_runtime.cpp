// E3 — running time: Theorem 3.3 claims O((m+n)·n) for the fast-forward
// implementation. Sweeps n and m for the general and the unit-size engines,
// the stepwise reference on small inputs, and the front-accumulation
// adversarial workload from DESIGN.md §4 (the worst case for the unit
// engine's window-walk maintenance — the workload the resumable cursor
// exists for). Every cell is timed --reps times; the table and the JSON
// artifact report min/median and jobs-per-second throughput.
//
// Usage: bench_runtime [--max-n=N] [--adversarial-n=N] [--parallel-n=N]
//                      [--reps=K] [--csv] [--json-dir=DIR]
//   --max-n          cap on the sweep sizes (default 256000); CI smoke runs
//                    pass a small cap so the bench finishes in seconds
//   --adversarial-n  size of the front-accumulation case (default 256000)
//   --parallel-n     size of the E14 scalar-vs-parallel unit-engine cells
//                    (default 0 = section skipped, keeping the default
//                    invocation's label set — and with it the checked-in CI
//                    baseline — unchanged)
#include <iostream>
#include <string>

#include "core/sos_scheduler.hpp"
#include "harness.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/sos_generators.hpp"

namespace {

using namespace sharedres;

core::Instance instance_for(std::size_t n, int m, core::Res max_size,
                            std::uint64_t seed) {
  workloads::SosConfig cfg;
  cfg.machines = m;
  cfg.capacity = 1'000'000;
  cfg.jobs = n;
  cfg.max_size = max_size;
  cfg.seed = seed;
  return workloads::uniform_instance(cfg);
}

std::string cell_label(const char* engine, std::size_t n, int m) {
  return std::string(engine) + "/n=" + std::to_string(n) +
         "/m=" + std::to_string(m);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::Harness h(cli, "bench_runtime",
                   "E3 running time of the sliding-window engines "
                   "(Theorem 3.3: O((m+n)n))");
  const auto max_n = static_cast<std::size_t>(cli.get_int("max-n", 256'000));
  const auto adv_n =
      static_cast<std::size_t>(cli.get_int("adversarial-n", 256'000));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 3));

  const std::size_t sizes[] = {1'000, 4'000, 16'000, 64'000, 256'000};
  const int machine_counts[] = {4, 16, 64};

  // Makespans accumulate into the table, which keeps the timed calls
  // observable (nothing for the optimizer to delete).
  h.section(
      "E3  Fast-forward engine runtimes (general sizes / unit sizes), "
      "median of --reps");
  util::Table grid({"engine", "n", "m", "min_ms", "median_ms", "jobs_per_s",
                    "makespan"});
  for (const std::size_t n : sizes) {
    if (n > max_n) continue;
    for (const int m : machine_counts) {
      {
        const core::Instance inst = instance_for(n, m, 5, 42);
        core::Time span = 0;
        const bench::Timing t = h.measure(
            cell_label("sos", n, m), reps,
            [&] { span = core::schedule_sos(inst).makespan(); },
            static_cast<double>(n));
        grid.add("sos", n, m, util::fixed(t.seconds_min * 1e3, 3),
                 util::fixed(t.seconds_median * 1e3, 3),
                 util::fixed(t.items_per_second, 0), span);
      }
      {
        const core::Instance inst = instance_for(n, m, 1, 43);
        core::Time span = 0;
        const bench::Timing t = h.measure(
            cell_label("unit", n, m), reps,
            [&] { span = core::schedule_sos_unit(inst).makespan(); },
            static_cast<double>(n));
        grid.add("unit", n, m, util::fixed(t.seconds_min * 1e3, 3),
                 util::fixed(t.seconds_median * 1e3, 3),
                 util::fixed(t.items_per_second, 0), span);
      }
    }
  }
  h.table(grid);

  // Stepwise reference: one block per time step, no fast-forward — only
  // feasible on small inputs (makespan-many steps).
  h.section("Stepwise reference engine (no fast-forward), small n, m = 8");
  util::Table stepwise({"n", "min_ms", "median_ms", "makespan"});
  for (const std::size_t n : {500u, 1'000u, 2'000u}) {
    if (n > max_n) continue;
    const core::Instance inst = instance_for(n, 8, 3, 44);
    core::Time span = 0;
    const bench::Timing t = h.measure(
        cell_label("stepwise", n, 8), reps,
        [&] { span = core::schedule_sos(inst, {.fast_forward = false})
                         .makespan(); });
    stepwise.add(n, util::fixed(t.seconds_min * 1e3, 3),
                 util::fixed(t.seconds_median * 1e3, 3), span);
  }
  h.table(stepwise);

  // The DESIGN.md §4 adversarial workload: every m-window is light, every
  // step completes its whole window, so a restart-from-head window walk
  // degenerates to O(n²/m) total work. The unit engine's resumable cursor
  // keeps this linear; this cell is the perf-regression canary for it.
  h.section(
      "Front-accumulation adversarial workload (DESIGN.md §4), unit engine, "
      "m = 4");
  util::Table adv({"n", "m", "min_ms", "median_ms", "jobs_per_s",
                   "makespan"});
  {
    workloads::SosConfig cfg;
    cfg.machines = 4;
    cfg.capacity = 1'000'000;
    cfg.jobs = adv_n;
    cfg.seed = 42;
    const core::Instance inst = workloads::front_accumulation_instance(cfg);
    core::Time span = 0;
    const bench::Timing t = h.measure(
        cell_label("unit_front_accumulation", adv_n, 4), reps,
        [&] { span = core::schedule_sos_unit(inst).makespan(); },
        static_cast<double>(adv_n));
    adv.add(adv_n, 4, util::fixed(t.seconds_min * 1e3, 3),
            util::fixed(t.seconds_median * 1e3, 3),
            util::fixed(t.items_per_second, 0), span);
  }
  h.table(adv);

  // E14 — the descriptor-parallel unit engine (core/parallel_unit.hpp)
  // against the scalar linked-list engine on the heavy prefix-consumption
  // regime: m = 512, r_j uniform on [0.002, 0.004]·C, so every window turns
  // heavy within ≤ 500 members and the fast path never bails. The schedules
  // are asserted equal before any timing is reported — a fast wrong answer
  // must fail the bench, not set a baseline.
  const auto par_n = static_cast<std::size_t>(cli.get_int("parallel-n", 0));
  if (par_n > 0) {
    h.section(
        "E14  Scalar vs descriptor-parallel unit engine, heavy regime "
        "(m = 512, r ∈ [0.002, 0.004]·C)");
    workloads::SosConfig cfg;
    cfg.machines = 512;
    cfg.capacity = 1'000'000;
    cfg.jobs = par_n;
    cfg.max_size = 1;
    cfg.seed = 7;
    const core::Instance inst = workloads::uniform_instance(cfg, 0.002, 0.004);

    const core::Schedule scalar_schedule = core::schedule_sos_unit(inst);
    util::Table par({"engine", "threads", "n", "min_ms", "median_ms",
                     "jobs_per_s", "speedup_vs_scalar"});
    double scalar_min = 0.0;
    {
      core::Time span = 0;
      const bench::Timing t = h.measure(
          cell_label("unit_scalar", par_n, 512), reps,
          [&] { span = core::schedule_sos_unit(inst).makespan(); },
          static_cast<double>(par_n));
      scalar_min = t.seconds_min;
      par.add("unit_scalar", "-", par_n, util::fixed(t.seconds_min * 1e3, 3),
              util::fixed(t.seconds_median * 1e3, 3),
              util::fixed(t.items_per_second, 0), "1.00");
    }
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      core::SosOptions options;
      options.parallel_threads = threads;
      options.parallel_min_jobs = 0;
      const core::Schedule check = core::schedule_sos_unit(inst, options);
      if (!(check == scalar_schedule)) {
        std::cerr << "bench_runtime: parallel schedule (t=" << threads
                  << ") differs from the scalar engine's\n";
        return 1;
      }
      core::Time span = 0;
      const bench::Timing t = h.measure(
          "unit_parallel/t=" + std::to_string(threads) +
              "/n=" + std::to_string(par_n) + "/m=512",
          reps,
          [&] { span = core::schedule_sos_unit(inst, options).makespan(); },
          static_cast<double>(par_n));
      par.add("unit_parallel", threads, par_n,
              util::fixed(t.seconds_min * 1e3, 3),
              util::fixed(t.seconds_median * 1e3, 3),
              util::fixed(t.items_per_second, 0),
              util::fixed(scalar_min / t.seconds_min, 2));
    }
    h.table(par);
  }

  return h.finish();
}
