// E10 — Theorem 2.1 in practice: exact solving of the 3-PARTITION
// reduction family blows up exponentially while the approximation stays
// polynomial and near-optimal (on planted YES instances OPT = q exactly, so
// true ratios are measurable at any size).
//
// Usage: bench_hardness [--csv] [--json-dir=DIR]
#include "core/lower_bounds.hpp"
#include "core/sos_scheduler.hpp"
#include "hardness/three_partition.hpp"
#include "harness.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace sharedres;
  const util::Cli cli(argc, argv);
  bench::Harness h(cli, "bench_hardness",
                   "E10 hardness frontier: exact vs approximation on the "
                   "3-PARTITION reduction (Theorem 2.1)");

  util::Table table({"q", "jobs", "exact_ms", "exact_solved", "window/OPT",
                     "window_ms"});
  for (const std::size_t q : {1u, 2u, 3u, 4u, 20u, 200u}) {
    util::Summary exact_ms, window_ratio, window_ms;
    int solved = 0;
    int attempted = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto planted = hardness::planted_yes_instance(q, 40, seed);
      const core::Instance inst = hardness::to_sos_instance(planted);

      if (q <= 4) {
        ++attempted;
        util::Timer timer;
        const auto decision = hardness::decide_via_sos(planted, 3'000'000);
        exact_ms.add(timer.millis());
        if (decision) ++solved;
      }

      util::Timer timer;
      const core::Time makespan = core::schedule_sos_unit(inst).makespan();
      window_ms.add(timer.millis());
      // Planted YES ⇒ OPT = q exactly.
      window_ratio.add(static_cast<double>(makespan) /
                       static_cast<double>(q));
    }
    table.add(q, 3 * q,
              attempted ? util::fixed(exact_ms.mean(), 2) : std::string("-"),
              attempted ? std::to_string(solved) + "/" +
                              std::to_string(attempted)
                        : std::string("-"),
              util::fixed(window_ratio.mean()),
              util::fixed(window_ms.mean(), 3));
  }

  h.section(
      "E10  Hardness frontier: exact vs approximation on the 3-PARTITION "
      "reduction (Theorem 2.1)");
  h.table(table);
  return h.finish();
}
