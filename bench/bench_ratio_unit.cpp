// E2 — unit-size jobs: the m-maximal-window variant (asymptotic ratio
// 1 + 1/(m−1)) against the general algorithm (2 + 1/(m−2)) and the Eq. (1)
// lower bound. Shows the improvement the paper's unit-size modification buys
// and how both scale with m.
//
// Usage: bench_ratio_unit [--jobs=N] [--capacity=C] [--seeds=K] [--csv]
//        [--threads=T] [--json-dir=DIR]
#include "core/lower_bounds.hpp"
#include "core/sos_scheduler.hpp"
#include "harness.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/sos_generators.hpp"

namespace {

struct Cell {
  std::string family;
  int machines = 0;
};

struct CellResult {
  sharedres::util::Summary unit_ratio;
  sharedres::util::Summary general_ratio;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sharedres;
  const util::Cli cli(argc, argv);
  bench::Harness h(cli, "bench_ratio_unit",
                   "E2 unit-size jobs: m-maximal windows vs the general "
                   "algorithm (Theorem 3.3, unit case; Corollary 3.9)");
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs", 500));
  const auto capacity = cli.get_int("capacity", 1'000'000);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 5));

  std::vector<Cell> cells;
  for (const std::string& family : workloads::instance_families()) {
    for (const int m : {2, 3, 4, 6, 8, 16, 32, 64, 128}) {
      cells.push_back(Cell{family, m});
    }
  }

  // Cells are independent; fan them out (results collected in cell order,
  // so the table is identical to a serial run).
  const auto results = util::parallel_map<CellResult>(
      cells.size(),
      [&](std::size_t c) {
        const Cell& cell = cells[c];
        CellResult out;
        for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
          workloads::SosConfig cfg;
          cfg.machines = cell.machines;
          cfg.capacity = capacity;
          cfg.jobs = jobs;
          cfg.max_size = 1;
          cfg.seed = seed;
          const core::Instance inst =
              workloads::make_instance(cell.family, cfg);
          const double lb =
              core::lower_bounds(inst).combined_exact().to_double();
          out.unit_ratio.add(
              static_cast<double>(core::schedule_sos_unit(inst).makespan()) /
              lb);
          out.general_ratio.add(
              static_cast<double>(core::schedule_sos(inst).makespan()) / lb);
        }
        return out;
      },
      h.threads());

  util::Table table({"family", "m", "unit_ratio", "unit_max", "general_ratio",
                     "unit_bound", "general_bound"});
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const int m = cells[c].machines;
    table.add(cells[c].family, m, util::fixed(results[c].unit_ratio.mean()),
              util::fixed(results[c].unit_ratio.max()),
              util::fixed(results[c].general_ratio.mean()),
              util::fixed(core::unit_ratio_bound(m).to_double()),
              m >= 3 ? util::fixed(core::sos_ratio_bound(m).to_double())
                     : std::string("-"));
  }

  h.section(
      "E2  Unit-size jobs: m-maximal windows vs the general algorithm "
      "(Theorem 3.3, unit case; Corollary 3.9)");
  h.table(table);
  return h.finish();
}
