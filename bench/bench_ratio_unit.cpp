// E2 — unit-size jobs: the m-maximal-window variant (asymptotic ratio
// 1 + 1/(m−1)) against the general algorithm (2 + 1/(m−2)) and the Eq. (1)
// lower bound. Shows the improvement the paper's unit-size modification buys
// and how both scale with m.
//
// Usage: bench_ratio_unit [--jobs=N] [--capacity=C] [--seeds=K] [--csv]
#include <iostream>

#include "core/lower_bounds.hpp"
#include "core/sos_scheduler.hpp"
#include "core/validator.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/sos_generators.hpp"

int main(int argc, char** argv) {
  using namespace sharedres;
  const util::Cli cli(argc, argv);
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs", 500));
  const auto capacity = cli.get_int("capacity", 1'000'000);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 5));
  const bool csv = cli.has("csv");

  util::Table table({"family", "m", "unit_ratio", "unit_max", "general_ratio",
                     "unit_bound", "general_bound"});

  for (const std::string& family : workloads::instance_families()) {
    for (const int m : {2, 3, 4, 6, 8, 16, 32, 64, 128}) {
      util::Summary unit_ratio;
      util::Summary general_ratio;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        workloads::SosConfig cfg;
        cfg.machines = m;
        cfg.capacity = capacity;
        cfg.jobs = jobs;
        cfg.max_size = 1;
        cfg.seed = seed;
        const core::Instance inst = workloads::make_instance(family, cfg);
        const double lb =
            core::lower_bounds(inst).combined_exact().to_double();
        unit_ratio.add(
            static_cast<double>(core::schedule_sos_unit(inst).makespan()) /
            lb);
        general_ratio.add(
            static_cast<double>(core::schedule_sos(inst).makespan()) / lb);
      }
      table.add(family, m, util::fixed(unit_ratio.mean()),
                util::fixed(unit_ratio.max()),
                util::fixed(general_ratio.mean()),
                util::fixed(core::unit_ratio_bound(m).to_double()),
                m >= 3 ? util::fixed(core::sos_ratio_bound(m).to_double())
                       : std::string("-"));
    }
  }

  std::cout << "E2  Unit-size jobs: m-maximal windows vs the general "
               "algorithm (Theorem 3.3, unit case; Corollary 3.9)\n\n";
  if (csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
