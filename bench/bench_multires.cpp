// E18 — d-resource scheduling: the rigid multires engine across the
// d-resource generator families, dimensions d ∈ {1, 2, 3}, and machine
// counts, plus an exact-optimum round against the rigid search at tiny n.
//
// Round 1 (families): for each family × d × m × seed, schedule_multires
// runs both fast-forwarded and stepwise on the same generated instance.
// Differential gates (hard failures, not table entries): the schedule must
// pass the validator — including the per-axis V3 checks — and the two run
// modes must agree on the makespan (the engine contract). Each cell
// reports the worst makespan/lower-bound ratio over the seeds plus the
// summed makespans; the d-dimensional lower bound (per-axis resource
// maxima) is the denominator.
//
// Round 2 (exact): tiny coarse-grid d > 1 instances where the exact rigid
// search (exact::exact_multires_makespan) terminates; ratios are against
// the true rigid optimum, and greedy < OPT aborts (one of the two is
// wrong). d = 1 is excluded here: the facade delegates to the sharable
// window scheduler, which may legitimately beat the RIGID optimum — that
// relationship is pinned in tests/test_multires_differential.cpp instead.
//
// All ratios are integer parts-per-million (makespan·10^6 / bound,
// truncated): exact integer arithmetic over seeded PRNG draws, so every
// figure is a pure function of the configuration. The same figures are
// exported as DETERMINISTIC gauges (multires.<family>.d<D>.m<M>.* and
// multires.exact.d<D>.*). CI runs this bench at SHAREDRES_THREADS 1/2/8
// and requires the deterministic blocks to be exactly equal
// (scripts/check_bench_regression.py --equal-across), then compares
// against the checked-in baseline — the table in EXPERIMENTS.md E18 is
// this bench's output.
//
// The shape to expect: correlated cells sit close to the lower bound (one
// axis is binding, the rest are slack — the rigid packer sees an almost
// 1-d problem); anticorrelated cells ride higher because the bound's
// per-axis maxima ignore the pairing constraint the engine actually faces;
// vmpack sits between. Ratios drift up slightly with d (more axes, looser
// bound), which is the expected gap of a per-axis bound, not an engine
// regression.
//
// Usage: bench_multires [--jobs=N] [--seeds=K] [--capacity=C]
//                       [--reps=R] [--csv] [--json-dir=DIR]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/lower_bounds.hpp"
#include "core/multires_scheduler.hpp"
#include "core/validator.hpp"
#include "exact/exact_multires.hpp"
#include "harness.hpp"
#include "obs/registry.hpp"
#include "util/checked.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "workloads/multires_generators.hpp"

namespace {

using namespace sharedres;

[[noreturn]] void die(const std::string& what) {
  std::fprintf(stderr, "bench_multires: %s\n", what.c_str());
  std::exit(1);
}

/// makespan·10^6 / bound, truncated — exact integer arithmetic.
std::int64_t ratio_ppm(core::Time makespan, core::Time bound) {
  if (bound <= 0) die("nonpositive bound in ratio");
  return util::mul_checked(static_cast<std::int64_t>(makespan),
                           std::int64_t{1'000'000}) /
         static_cast<std::int64_t>(bound);
}

std::string ppm_str(std::int64_t ppm) {
  return util::fixed(static_cast<double>(ppm) / 1e6, 4);
}

/// Schedule `inst` both ways, enforce the bench's differential gates
/// (validator-clean, stepwise ≡ fast-forward), return the makespan.
core::Time contest(const core::Instance& inst, const std::string& cell) {
  const core::Schedule fast = core::schedule_multires(inst);
  const auto check = core::validate(inst, fast);
  if (!check.ok) die(cell + ": infeasible schedule: " + check.error);
  const core::Schedule slow =
      core::schedule_multires(inst, {.fast_forward = false});
  if (slow.makespan() != fast.makespan()) {
    die(cell + ": stepwise makespan " + std::to_string(slow.makespan()) +
        " != fast-forward " + std::to_string(fast.makespan()));
  }
  return fast.makespan();
}

/// Worst ratio and summed makespan over a seed sweep.
struct CellScore {
  std::int64_t worst_ppm = 0;
  core::Time makespan_sum = 0;

  void absorb(core::Time makespan, core::Time bound) {
    worst_ppm = std::max(worst_ppm, ratio_ppm(makespan, bound));
    makespan_sum = util::add_checked(makespan_sum, makespan);
  }
};

void publish(const std::string& prefix, const CellScore& score) {
  obs::Registry& reg = obs::Registry::global();
  reg.gauge(prefix + ".worst_ratio_ppm").set(score.worst_ppm);
  reg.gauge(prefix + ".makespan_sum").set(score.makespan_sum);
}

/// Tiny coarse-grid d-resource instance for the exact round: requirements
/// on a grid of kCapacity so the event tree stays enumerable.
core::Instance tiny_multires(std::size_t resources, std::uint64_t seed) {
  constexpr core::Res kCapacity = 12;
  constexpr std::size_t kJobs = 6;
  util::Rng rng(seed * 7919ULL + resources);
  std::vector<core::MultiJob> jobs(kJobs);
  for (core::MultiJob& job : jobs) {
    job.size = rng.uniform_int(1, 3);
    job.requirements.resize(resources);
    for (std::size_t k = 0; k < resources; ++k) {
      job.requirements[k] = rng.uniform_int(1, kCapacity);
    }
  }
  return core::Instance(3, std::vector<core::Res>(resources, kCapacity),
                        std::move(jobs));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sharedres;
  const util::Cli cli(argc, argv);
  bench::Harness h(cli, "bench_multires",
                   "E18 d-resource scheduling: rigid multires engine vs "
                   "d-dimensional lower bound and exact rigid optimum");
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs", 40));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const auto capacity = static_cast<core::Res>(cli.get_int("capacity", 360));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 1));
  const int machine_counts[] = {4, 8};
  const std::size_t dims[] = {1, 2, 3};

  util::Table table({"family", "d", "m", "worst ratio", "sum makespan"});
  for (const std::string& family : workloads::multires_families()) {
    // One timed label per family (the d × m × seed sweep inside), so the
    // baseline's invocation check keys on the family list alone.
    h.measure(family, reps, [&] {
      for (const std::size_t resources : dims) {
        for (const int machines : machine_counts) {
          CellScore score;
          for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
            workloads::MultiResConfig cfg;
            cfg.machines = machines;
            cfg.resources = resources;
            cfg.capacity = capacity;
            cfg.jobs = jobs;
            cfg.max_size = 3;
            cfg.seed = seed;
            const core::Instance inst =
                workloads::make_multires_instance(family, cfg);
            const core::Time bound = core::lower_bounds(inst).combined();
            const std::string cell =
                family + "/d" + std::to_string(resources) + "/m" +
                std::to_string(machines) + "/seed" + std::to_string(seed);
            score.absorb(contest(inst, cell), bound);
          }
          table.add(family, resources, machines, ppm_str(score.worst_ppm),
                    score.makespan_sum);
          publish("multires." + family + ".d" + std::to_string(resources) +
                      ".m" + std::to_string(machines),
                  score);
        }
      }
    }, static_cast<double>(jobs * seeds * std::size(machine_counts) *
                           std::size(dims)));
  }

  // Round 2: exact rigid optimum at tiny n, d > 1 only (file comment).
  util::Table exact_table({"d", "worst ratio vs OPT", "sum makespan",
                           "sum OPT"});
  h.measure("exact", reps, [&] {
    for (const std::size_t resources : {std::size_t{2}, std::size_t{3}}) {
      CellScore score;
      core::Time opt_sum = 0;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const core::Instance inst = tiny_multires(resources, seed);
        const auto opt = exact::exact_multires_makespan(inst);
        if (!opt) die("exact search exceeded its state budget at tiny n");
        opt_sum = util::add_checked(opt_sum, *opt);
        const std::string cell = "exact/d" + std::to_string(resources) +
                                 "/seed" + std::to_string(seed);
        const core::Time makespan = contest(inst, cell);
        if (makespan < *opt) {
          die(cell + ": greedy makespan below the exact rigid optimum");
        }
        score.absorb(makespan, *opt);
      }
      exact_table.add(resources, ppm_str(score.worst_ppm),
                      score.makespan_sum, opt_sum);
      publish("multires.exact.d" + std::to_string(resources), score);
    }
  }, static_cast<double>(2 * seeds));

  h.section(
      "E18  d-resource: worst makespan/LB ratio per family x d x m "
      "(seeds pooled)");
  h.table(table);
  h.section("E18  Exact round: worst makespan/OPT ratio at tiny n (d > 1)");
  h.table(exact_table);
  return h.finish();
}
