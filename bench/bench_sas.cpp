// E5 — Theorem 4.8: sum of task completion times of the combined SAS
// algorithm against the Lemma-4.3 lower bound, across machine counts and
// task mixes. Also reports the T1/T2 split and the per-lemma slack of the
// two sub-schedulers.
//
// Usage: bench_sas [--tasks=K] [--seeds=S] [--csv] [--json-dir=DIR]
#include "exact/exact_sas.hpp"
#include "harness.hpp"
#include "sas/sas_bounds.hpp"
#include "sas/sas_scheduler.hpp"
#include "sas/weighted.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/sas_generators.hpp"

int main(int argc, char** argv) {
  using namespace sharedres;
  const util::Cli cli(argc, argv);
  bench::Harness h(cli, "bench_sas",
                   "E5 SAS sum of completion times vs Lemma 4.3 lower bound "
                   "(Theorem 4.8)");
  const auto tasks = static_cast<std::size_t>(cli.get_int("tasks", 48));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 5));

  struct Mix {
    const char* name;
    sas::SasInstance (*make)(const workloads::SasConfig&);
  };
  const Mix mixes[] = {
      {"mixed",
       [](const workloads::SasConfig& cfg) {
         return workloads::mixed_task_set(cfg);
       }},
      {"heavy",
       [](const workloads::SasConfig& cfg) {
         return workloads::heavy_task_set(cfg);
       }},
      {"light",
       [](const workloads::SasConfig& cfg) {
         return workloads::light_task_set(cfg);
       }},
  };

  util::Table table({"mix", "m", "ratio_mean", "ratio_max", "t1_share",
                     "bound", "valid"});
  for (const Mix& mix : mixes) {
    for (const int m : {4, 6, 8, 16, 32, 64}) {
      util::Summary ratio;
      util::Summary t1_share;
      bool all_valid = true;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        workloads::SasConfig cfg;
        cfg.machines = m;
        cfg.capacity = 1'000'000;
        cfg.tasks = tasks;
        cfg.min_jobs = 1;
        cfg.max_jobs = 24;
        cfg.seed = seed;
        const sas::SasInstance inst = mix.make(cfg);
        const sas::SasResult result = sas::schedule_sas(inst);
        all_valid = all_valid && sas::validate(inst, result).ok;
        const auto lb = sas::sas_lower_bound(inst);
        ratio.add(static_cast<double>(result.sum_completion) /
                  static_cast<double>(lb));
        int t1 = 0;
        for (const int c : result.task_class) t1 += (c == 1);
        t1_share.add(static_cast<double>(t1) /
                     static_cast<double>(inst.tasks.size()));
      }
      table.add(mix.name, m, util::fixed(ratio.mean()),
                util::fixed(ratio.max()), util::fixed(t1_share.mean(), 2),
                util::fixed(sas::sas_ratio_bound(m).to_double()),
                all_valid ? "yes" : "NO");
    }
  }

  h.section(
      "E5  SAS sum of completion times vs Lemma 4.3 lower bound "
      "(Theorem 4.8)");
  h.table(table);

  // E5b — the weighted extension: Smith-rule ordering vs the paper's order
  // under the weighted objective Σ w_i·f_i (weights uniform in [1, 20]).
  util::Table wtable({"mix", "m", "smith/wLB", "paper_order/wLB",
                      "smith_gain"});
  for (const Mix& mix : mixes) {
    for (const int m : {4, 8, 32}) {
      util::Summary smith_ratio, plain_ratio, gain;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        workloads::SasConfig cfg;
        cfg.machines = m;
        cfg.capacity = 1'000'000;
        cfg.tasks = tasks;
        cfg.min_jobs = 1;
        cfg.max_jobs = 24;
        cfg.seed = seed;
        const sas::SasInstance inst = mix.make(cfg);
        util::Rng wrng(seed * 31 + 7);
        std::vector<core::Res> weights;
        weights.reserve(inst.tasks.size());
        for (std::size_t i = 0; i < inst.tasks.size(); ++i) {
          weights.push_back(wrng.uniform_int(1, 20));
        }
        const auto wlb = static_cast<double>(
            sas::weighted_lower_bound(inst, weights));
        const auto smith = static_cast<double>(sas::weighted_objective(
            sas::schedule_sas_weighted(inst, weights), weights));
        const auto plain = static_cast<double>(
            sas::weighted_objective(sas::schedule_sas(inst), weights));
        smith_ratio.add(smith / wlb);
        plain_ratio.add(plain / wlb);
        gain.add(plain / smith);
      }
      wtable.add(mix.name, m, util::fixed(smith_ratio.mean()),
                 util::fixed(plain_ratio.mean()), util::fixed(gain.mean()));
    }
  }
  h.section(
      "E5b  Weighted extension (Smith-rule order vs paper order, ratios vs "
      "the proven weighted LB)");
  h.table(wtable);

  // Micro instances: the Theorem-4.8 algorithm against the TRUE optimum
  // (exact branch-and-bound) and the Lemma-4.3 bound's tightness.
  util::Table tiny({"capacity", "solved", "alg/OPT_mean", "alg/OPT_max",
                    "LB=OPT_fraction"});
  for (const core::Res capacity : {4, 6, 8}) {
    util::Summary ratio;
    int solved = 0;
    int lb_tight = 0;
    for (std::uint64_t seed = 200; seed < 230; ++seed) {
      util::Rng rng(seed);
      sas::SasInstance inst;
      inst.machines = 4;
      inst.capacity = capacity;
      const auto k = static_cast<std::size_t>(rng.uniform_int(1, 3));
      for (std::size_t i = 0; i < k; ++i) {
        sas::Task task;
        const auto jobs = static_cast<std::size_t>(rng.uniform_int(1, 3));
        for (std::size_t j = 0; j < jobs; ++j) {
          task.requirements.push_back(rng.uniform_int(1, capacity));
        }
        inst.tasks.push_back(std::move(task));
      }
      const auto opt =
          exact::exact_sas_sum_completion(inst, {.max_states = 300'000});
      if (!opt) continue;
      ++solved;
      ratio.add(static_cast<double>(sas::schedule_sas(inst).sum_completion) /
                static_cast<double>(*opt));
      lb_tight += (sas::sas_lower_bound(inst) == *opt);
    }
    tiny.add(capacity, solved, util::fixed(ratio.mean()),
             util::fixed(ratio.max()),
             util::fixed(static_cast<double>(lb_tight) /
                             static_cast<double>(std::max(1, solved)),
                         3));
  }
  h.section("Micro instances vs exact optimum (m = 4):");
  h.table(tiny);
  return h.finish();
}
