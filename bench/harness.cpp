#include "harness.hpp"

#include <fstream>
#include <iostream>
#include <stdexcept>

#include "obs/json_export.hpp"
#include "obs/registry.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace sharedres::bench {

Timing Timing::from(std::string label, const util::Measurement& m,
                    double items) {
  Timing t;
  t.label = std::move(label);
  t.reps = m.reps();
  t.seconds_min = m.min();
  t.seconds_median = m.median();
  t.seconds_mean = m.mean();
  t.seconds_max = m.max();
  if (items > 0.0 && t.seconds_median > 0.0) {
    t.items_per_second = items / t.seconds_median;
  }
  return t;
}

Harness::Harness(const util::Cli& cli, std::string name, std::string experiment)
    : name_(std::move(name)),
      experiment_(std::move(experiment)),
      json_dir_(cli.get("json-dir", ".")),
      csv_(cli.has("csv")) {
  const std::int64_t requested = cli.get_int("threads", 0);
  threads_ = requested > 0 ? static_cast<std::size_t>(requested)
                           : util::default_threads();
}

void Harness::section(const std::string& title) {
  if (any_output_) std::cout << '\n';
  any_output_ = true;
  std::cout << title << "\n\n";
  current_title_ = title;
}

void Harness::table(const util::Table& t) {
  if (csv_) {
    t.write_csv(std::cout);
  } else {
    t.print(std::cout);
  }
  tables_.push_back(RecordedTable{current_title_, t.header(), t.row_data()});
}

void Harness::record(Timing t) {
  std::cout << "[time] " << t.label << ": min " << t.seconds_min * 1e3
            << " ms, median " << t.seconds_median * 1e3 << " ms over "
            << t.reps << " rep(s)";
  if (t.items_per_second > 0.0) {
    std::cout << ", " << t.items_per_second << " items/s";
  }
  std::cout << '\n';
  timings_.push_back(std::move(t));
}

int Harness::finish() {
  {
    Timing total;
    total.label = "total";
    total.reps = 1;
    const double s = total_.seconds();
    total.seconds_min = total.seconds_median = total.seconds_mean =
        total.seconds_max = s;
    timings_.push_back(std::move(total));
  }

  util::Json doc{util::Json::Object{}};
  doc.emplace("schema_version", 1);
  doc.emplace("name", name_);
  doc.emplace("experiment", experiment_);
  doc.emplace("threads", threads_);

  util::Json tables{util::Json::Array{}};
  for (const RecordedTable& rt : tables_) {
    util::Json jt{util::Json::Object{}};
    jt.emplace("title", rt.title);
    util::Json columns{util::Json::Array{}};
    for (const std::string& c : rt.columns) columns.push_back(c);
    jt.emplace("columns", std::move(columns));
    util::Json rows{util::Json::Array{}};
    for (const auto& row : rt.rows) {
      util::Json jrow{util::Json::Array{}};
      for (const std::string& cell : row) jrow.push_back(cell);
      rows.push_back(std::move(jrow));
    }
    jt.emplace("rows", std::move(rows));
    tables.push_back(std::move(jt));
  }
  doc.emplace("tables", std::move(tables));

  util::Json timings{util::Json::Array{}};
  for (const Timing& t : timings_) {
    util::Json jt{util::Json::Object{}};
    jt.emplace("label", t.label);
    jt.emplace("reps", t.reps);
    jt.emplace("seconds_min", t.seconds_min);
    jt.emplace("seconds_median", t.seconds_median);
    jt.emplace("seconds_mean", t.seconds_mean);
    jt.emplace("seconds_max", t.seconds_max);
    jt.emplace("items_per_second", t.items_per_second);
    timings.push_back(std::move(jt));
  }
  doc.emplace("timings", std::move(timings));

  // The observability registry at exit. The "deterministic" sub-block is
  // byte-stable across --threads and reruns; check_bench_regression.py
  // treats any drift in it as a hard failure.
  doc.emplace("metrics", obs::to_json(obs::Registry::global()));

  const std::string path = json_dir_ + "/BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot write " << path << '\n';
    return 1;
  }
  out << doc.dump(2) << '\n';
  out.close();
  std::cerr << "wrote " << path << '\n';
  return out ? 0 : 1;
}

}  // namespace sharedres::bench
