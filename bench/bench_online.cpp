// E11 — online arrivals (extension): greedy resource sharing vs
// full-reservation admission under bursty arrivals, measured against the
// release-aware lower bound and the clairvoyant offline window schedule.
// The shape to expect: sharing wins exactly when requirement conflicts are
// frequent (near-boundary, bimodal), reservation catches up when jobs
// rarely collide (pareto light tails), mirroring E1's offline crossover.
//
// Usage: bench_online [--jobs=N] [--seeds=K] [--csv] [--json-dir=DIR]
#include "core/sos_scheduler.hpp"
#include "harness.hpp"
#include "online/online_scheduler.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/sos_generators.hpp"

int main(int argc, char** argv) {
  using namespace sharedres;
  const util::Cli cli(argc, argv);
  bench::Harness h(cli, "bench_online",
                   "E11 online arrivals (extension): greedy sharing vs "
                   "reservation, bursty releases");
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs", 200));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 5));

  util::Table table({"family", "m", "greedy/LB", "reservation/LB",
                     "greedy/clairvoyant"});
  for (const std::string& family : workloads::instance_families()) {
    for (const int m : {4, 8, 16}) {
      util::Summary greedy_ratio, reservation_ratio, vs_clairvoyant;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        workloads::SosConfig cfg;
        cfg.machines = m;
        cfg.capacity = 100'000;
        cfg.jobs = jobs;
        cfg.max_size = 3;
        cfg.seed = seed;
        const online::OnlineInstance inst =
            workloads::online_arrivals(family, cfg, /*burst=*/2 * static_cast<std::size_t>(m),
                                       /*gap=*/3);
        const auto lb = static_cast<double>(online::online_lower_bound(inst));
        const auto greedy = static_cast<double>(
            online::schedule_online_greedy(inst).makespan());
        const auto reservation = static_cast<double>(
            online::schedule_online_reservation(inst).makespan());
        const auto clairvoyant = static_cast<double>(
            core::schedule_sos(inst.clairvoyant()).makespan());
        greedy_ratio.add(greedy / lb);
        reservation_ratio.add(reservation / lb);
        vs_clairvoyant.add(greedy / clairvoyant);
      }
      table.add(family, m, util::fixed(greedy_ratio.mean()),
                util::fixed(reservation_ratio.mean()),
                util::fixed(vs_clairvoyant.mean()));
    }
  }

  h.section(
      "E11  Online arrivals (extension): greedy sharing vs reservation, "
      "bursty releases");
  h.table(table);
  return h.finish();
}
