// E4 — Corollary 3.9: splittable bin packing with cardinality constraint k.
// The sliding-window packer (asymptotic 1 + 1/(k−1)) against NextFit,
// NextFit-Decreasing, the k=2 pairing heuristic, the combined lower bound,
// and exact optima on tiny instances. The interesting shape: as k grows the
// window packer's overhead vanishes (1/(k−1) → 0) while NextFit keeps a
// constant-factor gap on cardinality-bound workloads.
//
// Usage: bench_binpack [--items=N] [--seeds=K] [--csv] [--json-dir=DIR]
#include "binpack/packers.hpp"
#include "exact/exact_sos.hpp"
#include "harness.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/binpack_generators.hpp"

int main(int argc, char** argv) {
  using namespace sharedres;
  const util::Cli cli(argc, argv);
  bench::Harness h(cli, "bench_binpack",
                   "E4 splittable bin packing with cardinality constraints "
                   "(Corollary 3.9)");
  const auto items = static_cast<std::size_t>(cli.get_int("items", 300));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 5));

  struct Family {
    const char* name;
    binpack::PackingInstance (*make)(const workloads::PackConfig&);
  };
  const Family families[] = {
      {"uniform",
       [](const workloads::PackConfig& cfg) {
         return workloads::uniform_items(cfg);
       }},
      {"router",
       [](const workloads::PackConfig& cfg) {
         return workloads::router_tables(cfg);
       }},
      {"trap",
       [](const workloads::PackConfig& cfg) {
         // items counts groups of k here; normalize the total item count.
         auto c = cfg;
         c.items = cfg.items / static_cast<std::size_t>(cfg.cardinality);
         return workloads::cardinality_trap_items(c);
       }},
      {"halfplus",
       [](const workloads::PackConfig& cfg) {
         return workloads::half_plus_epsilon_items(cfg);
       }},
  };

  util::Table table({"family", "k", "window/LB", "nextfit/LB", "nfd/LB",
                     "ffd/LB", "pairing/LB", "window_bound"});
  for (const Family& family : families) {
    for (const int k : {2, 3, 4, 8, 16, 32, 64}) {
      util::Summary win, nf, nfd, ffd, pair;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        workloads::PackConfig cfg;
        cfg.capacity = 1'000'000;
        cfg.cardinality = k;
        cfg.items = items;
        cfg.seed = seed;
        const binpack::PackingInstance inst = family.make(cfg);
        const double lb = static_cast<double>(
            binpack::packing_lower_bounds(inst).combined());
        win.add(static_cast<double>(
                    binpack::sliding_window_packing(inst).bin_count()) /
                lb);
        nf.add(static_cast<double>(
                   binpack::next_fit_packing(inst).bin_count()) /
               lb);
        nfd.add(static_cast<double>(
                    binpack::next_fit_packing(inst, true).bin_count()) /
                lb);
        ffd.add(static_cast<double>(
                    binpack::first_fit_decreasing_packing(inst).bin_count()) /
                lb);
        if (k == 2) {
          pair.add(static_cast<double>(
                       binpack::pairing_packing(inst).bin_count()) /
                   lb);
        }
      }
      table.add(family.name, k, util::fixed(win.mean()),
                util::fixed(nf.mean()), util::fixed(nfd.mean()),
                util::fixed(ffd.mean()),
                k == 2 ? util::fixed(pair.mean()) : std::string("-"),
                util::fixed(binpack::sliding_window_ratio_bound(k)));
    }
  }

  h.section(
      "E4  Splittable bin packing with cardinality constraints "
      "(Corollary 3.9)");
  h.table(table);

  // Tiny-instance block: ratios against the TRUE optimum.
  util::Table tiny({"k", "instances", "window/OPT_mean", "window/OPT_max",
                    "LB=OPT_fraction"});
  for (const int k : {2, 3, 4}) {
    util::Summary ratio;
    int lb_tight = 0;
    int solved = 0;
    for (std::uint64_t seed = 100; seed < 130; ++seed) {
      util::Rng rng(seed);
      binpack::PackingInstance inst;
      inst.capacity = 6;
      inst.cardinality = k;
      const auto n = static_cast<std::size_t>(rng.uniform_int(3, 6));
      for (std::size_t i = 0; i < n; ++i) {
        inst.items.push_back(rng.uniform_int(1, 9));
      }
      const auto opt = exact::exact_bin_count(inst);
      if (!opt) continue;
      ++solved;
      ratio.add(static_cast<double>(
                    binpack::sliding_window_packing(inst).bin_count()) /
                static_cast<double>(*opt));
      lb_tight +=
          binpack::packing_lower_bounds(inst).combined() == *opt ? 1 : 0;
    }
    tiny.add(k, solved, util::fixed(ratio.mean()), util::fixed(ratio.max()),
             util::fixed(static_cast<double>(lb_tight) /
                         static_cast<double>(solved)));
  }
  h.section("Tiny instances vs exact optimum:");
  h.table(tiny);
  return h.finish();
}
