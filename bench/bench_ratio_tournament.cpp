// E17 — empirical-ratio tournament: the improved portfolio against the
// SPAA-2017 window scheduler and the naive baselines, on every generator
// family (random and adversarial) and machine count, plus an exact-optimum
// round at tiny n.
//
// Round 1 (families): for each family × m × seed, all four contenders
// (improved, window, gg, equalsplit) schedule the same instance. Every
// schedule runs through the validator (an infeasible schedule aborts the
// bench), and each cell reports the worst makespan/lower-bound ratio over
// the seeds plus the summed makespans. The tournament's differential gate:
// the improved portfolio's makespan may NEVER exceed the window
// scheduler's on any instance — portfolio domination, the executable form
// of "the improved algorithm's empirical ratio is no worse than
// SPAA-2017's" (hard failure, not a table entry).
//
// Round 2 (exact): tiny coarse-grid instances where exact_makespan
// terminates; ratios are against the true optimum instead of the lower
// bound, which is what "empirical approximation ratio" means when OPT is
// computable.
//
// All ratios are integer parts-per-million (makespan·10^6 / bound,
// truncated): the simulation is exact integer arithmetic over seeded PRNG
// draws, so every reported figure is a pure function of the configuration.
// The same figures are exported as DETERMINISTIC gauges
// (tournament.<family>.m<M>.<algo>.* and tournament.exact.<algo>.*). CI
// runs this bench at SHAREDRES_THREADS 1/2/8 and requires the deterministic
// blocks to be exactly equal (scripts/check_bench_regression.py
// --equal-across), then compares against the checked-in baseline — the
// ratio table in EXPERIMENTS.md E17 is this bench's output.
//
// The shape to expect: improved == window on most uniform/pareto cells
// (the balanced engine ties and the portfolio keeps its schedule), with
// the balanced engine pulling ahead on bimodal and oversized cells where
// a fractured absorber keeps the residue draining while the window
// engine serializes. gg ignores the shared resource and lands well above;
// equalsplit pays for naive fair sharing on nearboundary.
//
// Usage: bench_ratio_tournament [--jobs=N] [--seeds=K] [--capacity=C]
//                               [--reps=R] [--csv] [--json-dir=DIR]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/baselines.hpp"
#include "core/improved_scheduler.hpp"
#include "core/instance.hpp"
#include "core/lower_bounds.hpp"
#include "core/sos_scheduler.hpp"
#include "core/validator.hpp"
#include "exact/exact_sos.hpp"
#include "harness.hpp"
#include "obs/registry.hpp"
#include "util/checked.hpp"
#include "util/table.hpp"
#include "workloads/sos_generators.hpp"

namespace {

using namespace sharedres;

struct Contender {
  const char* name;
  core::Schedule (*run)(const core::Instance&);
};

core::Schedule run_improved(const core::Instance& inst) {
  return core::schedule_improved(inst);
}
core::Schedule run_window(const core::Instance& inst) {
  return core::schedule_sos(inst);
}
core::Schedule run_gg(const core::Instance& inst) {
  return baselines::schedule_garey_graham(inst);
}
core::Schedule run_equalsplit(const core::Instance& inst) {
  return baselines::schedule_equal_split(inst);
}

constexpr Contender kContenders[] = {
    {"improved", run_improved},
    {"window", run_window},
    {"gg", run_gg},
    {"equalsplit", run_equalsplit},
};

[[noreturn]] void die(const std::string& what) {
  std::fprintf(stderr, "bench_ratio_tournament: %s\n", what.c_str());
  std::exit(1);
}

/// makespan·10^6 / bound, truncated — exact integer arithmetic.
std::int64_t ratio_ppm(core::Time makespan, core::Time bound) {
  if (bound <= 0) die("nonpositive bound in ratio");
  return util::mul_checked(static_cast<std::int64_t>(makespan),
                           std::int64_t{1'000'000}) /
         static_cast<std::int64_t>(bound);
}

std::string ppm_str(std::int64_t ppm) {
  return util::fixed(static_cast<double>(ppm) / 1e6, 4);
}

/// Validated makespan of `contender` on `inst`; aborts on any violation.
core::Time contest(const Contender& contender, const core::Instance& inst,
                   const std::string& cell) {
  const core::Schedule sched = contender.run(inst);
  const auto check = core::validate(inst, sched);
  if (!check.ok) {
    die(cell + "/" + contender.name + ": infeasible schedule: " +
        check.error);
  }
  return sched.makespan();
}

/// Worst ratio and summed makespan for one contender over a seed sweep.
struct CellScore {
  std::int64_t worst_ppm = 0;
  core::Time makespan_sum = 0;

  void absorb(core::Time makespan, core::Time bound) {
    worst_ppm = std::max(worst_ppm, ratio_ppm(makespan, bound));
    makespan_sum = util::add_checked(makespan_sum, makespan);
  }
};

void publish(const std::string& prefix, const CellScore& score) {
  obs::Registry& reg = obs::Registry::global();
  reg.gauge(prefix + ".worst_ratio_ppm").set(score.worst_ppm);
  reg.gauge(prefix + ".makespan_sum").set(score.makespan_sum);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sharedres;
  const util::Cli cli(argc, argv);
  bench::Harness h(cli, "bench_ratio_tournament",
                   "E17 ratio tournament: improved portfolio vs window "
                   "scheduler vs baselines, worst ratio to LB/OPT");
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs", 48));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const auto capacity = static_cast<core::Res>(cli.get_int("capacity", 720));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 1));
  const int machine_counts[] = {4, 8, 16};
  constexpr std::size_t kAlgos = std::size(kContenders);

  util::Table table({"family", "m", "algo", "worst ratio", "sum makespan"});
  for (const std::string& family : workloads::instance_families()) {
    // One timed label per family (the m × seed sweep inside), so the
    // baseline's invocation check keys on the family list alone.
    h.measure(family, reps, [&] {
      for (const int machines : machine_counts) {
        CellScore scores[kAlgos];
        for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
          workloads::SosConfig cfg;
          cfg.machines = machines;
          cfg.capacity = capacity;
          cfg.jobs = jobs;
          cfg.max_size = 3;
          cfg.seed = seed;
          const core::Instance inst = workloads::make_instance(family, cfg);
          const core::Time bound = core::lower_bounds(inst).combined();
          const std::string cell =
              family + "/m" + std::to_string(machines) + "/seed" +
              std::to_string(seed);
          core::Time makespans[kAlgos];
          for (std::size_t a = 0; a < kAlgos; ++a) {
            makespans[a] = contest(kContenders[a], inst, cell);
            scores[a].absorb(makespans[a], bound);
          }
          // The tournament's hard differential gate (file comment).
          if (makespans[0] > makespans[1]) {
            die(cell + ": improved makespan " +
                std::to_string(makespans[0]) + " exceeds window " +
                std::to_string(makespans[1]));
          }
        }
        for (std::size_t a = 0; a < kAlgos; ++a) {
          table.add(family, machines, kContenders[a].name,
                    ppm_str(scores[a].worst_ppm), scores[a].makespan_sum);
          publish("tournament." + family + ".m" + std::to_string(machines) +
                      "." + kContenders[a].name,
                  scores[a]);
        }
      }
    }, static_cast<double>(jobs * seeds * std::size(machine_counts)));
  }

  // Round 2: exact optimum at tiny n (coarse grid keeps the state space
  // enumerable). Ratios are against OPT itself.
  util::Table exact_table({"algo", "worst ratio vs OPT", "sum makespan",
                           "sum OPT"});
  CellScore exact_scores[kAlgos];
  core::Time opt_sum = 0;
  h.measure("exact", reps, [&] {
    for (CellScore& s : exact_scores) s = CellScore{};
    opt_sum = 0;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const core::Instance inst =
          workloads::tiny_grid_instance(3, 6, 6, 2, seed);
      const auto opt = exact::exact_makespan(inst);
      if (!opt) die("exact_makespan exceeded its state budget at tiny n");
      opt_sum = util::add_checked(opt_sum, *opt);
      const std::string cell = "exact/seed" + std::to_string(seed);
      core::Time makespans[kAlgos];
      for (std::size_t a = 0; a < kAlgos; ++a) {
        makespans[a] = contest(kContenders[a], inst, cell);
        if (makespans[a] < *opt) {
          die(cell + "/" + kContenders[a].name +
              ": makespan below the exact optimum");
        }
        exact_scores[a].absorb(makespans[a], *opt);
      }
      if (makespans[0] > makespans[1]) {
        die(cell + ": improved makespan exceeds window at tiny n");
      }
    }
  }, static_cast<double>(seeds));
  for (std::size_t a = 0; a < kAlgos; ++a) {
    exact_table.add(kContenders[a].name,
                    ppm_str(exact_scores[a].worst_ppm),
                    exact_scores[a].makespan_sum, opt_sum);
    publish(std::string("tournament.exact.") + kContenders[a].name,
            exact_scores[a]);
  }

  h.section(
      "E17  Ratio tournament: worst makespan/LB ratio per family x m "
      "(seeds pooled)");
  h.table(table);
  h.section("E17  Exact round: worst makespan/OPT ratio at tiny n");
  h.table(exact_table);
  return h.finish();
}
