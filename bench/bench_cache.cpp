// E13 — solve-cache throughput on duplicate-heavy streams: how much does
// canonical-instance memoization buy when most records repeat work already
// done?  Two runs of batch::run_batch over the SAME generated NDJSON stream:
//
//   * cache_off — the plain pipeline (every record solved from scratch),
//   * cache_on  — the same pipeline with a solve cache large enough to hold
//                 every unique canonical instance.
//
// The stream models a parameter sweep replayed with jittered ids: U unique
// uniform instances (default 5% of the stream) whose duplicates are job
// permutations and share-scalings of the originals — exactly the variants
// the canonicalizer must identify.  The headline figure is the cache-on /
// cache-off instances-per-second ratio; the issue gates on >= 3x at 10k
// records, 5% unique.  A makespan checksum compares across both paths so
// the cache cannot silently change results.
//
// Usage: bench_cache [--instances=N] [--unique-pct=P] [--jobs=J]
//                    [--machines=M] [--reps=K] [--csv] [--json-dir=DIR]
#include <algorithm>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "batch/pipeline.hpp"
#include "batch/stream.hpp"
#include "core/instance.hpp"
#include "harness.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/sos_generators.hpp"

namespace {

using namespace sharedres;

// Re-emit `inst` with every requirement (and the capacity) multiplied by c —
// a share-scaling the canonicalizer reduces back to the original's key.
std::string scaled_record(const core::Instance& inst, core::Res c,
                          const std::string& id) {
  std::vector<core::Job> jobs(inst.size());
  for (std::size_t j = 0; j < inst.size(); ++j) {
    jobs[inst.original_id(j)] =
        core::Job{inst.job(j).size, inst.job(j).requirement * c};
  }
  return batch::format_instance_record(
      core::Instance(inst.machines(), inst.capacity() * c, std::move(jobs)),
      id);
}

// Re-emit `inst` with its jobs in a seeded random caller order — a
// permutation the canonical job sort folds back to the same key.
std::string permuted_record(const core::Instance& inst, std::uint64_t seed,
                            const std::string& id) {
  std::vector<core::Job> jobs(inst.size());
  for (std::size_t j = 0; j < inst.size(); ++j) {
    jobs[inst.original_id(j)] = inst.job(j);
  }
  std::mt19937_64 rng(seed);
  std::shuffle(jobs.begin(), jobs.end(), rng);
  return batch::format_instance_record(
      core::Instance(inst.machines(), inst.capacity(), std::move(jobs)), id);
}

std::string duplicate_heavy_stream(std::size_t instances, std::size_t unique,
                                   std::size_t jobs, int machines) {
  // Wide machines + light requirements: up to m jobs run concurrently, so a
  // solve emits wide blocks and costs several times the (fast-path) parse —
  // the regime where a duplicate-heavy sweep leaves real work to memoize.
  workloads::SosConfig cfg;
  cfg.machines = machines;
  cfg.jobs = jobs;
  cfg.max_size = 50;
  std::vector<core::Instance> originals;
  originals.reserve(unique);
  for (std::size_t i = 0; i < unique; ++i) {
    cfg.seed = 4000 + i;
    originals.push_back(workloads::uniform_instance(cfg, 0.001, 0.012));
  }
  std::string stream;
  for (std::size_t i = 0; i < instances; ++i) {
    const core::Instance& base = originals[i % unique];
    const std::string id = "e13-" + std::to_string(i);
    // First pass emits the originals verbatim; replays alternate between
    // permuted and share-scaled twins so hits must go through the
    // canonicalizer, not a byte-level dedup.
    const std::size_t round = i / unique;
    if (round == 0) {
      stream += batch::format_instance_record(base, id);
    } else if (round % 2 == 1) {
      stream += permuted_record(base, 77 * i + 13, id);
    } else {
      stream += scaled_record(base, 1 + static_cast<core::Res>(round % 7), id);
    }
    stream += '\n';
  }
  return stream;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::Harness h(cli, "bench_cache",
                   "E13 canonical solve-cache throughput on duplicate-heavy "
                   "batch streams");
  const auto instances =
      static_cast<std::size_t>(cli.get_int("instances", 10'000));
  const auto unique_pct = static_cast<std::size_t>(cli.get_int("unique-pct", 5));
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs", 400));
  const auto machines = static_cast<int>(cli.get_int("machines", 128));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 3));
  const std::size_t unique =
      std::max<std::size_t>(1, instances * unique_pct / 100);

  const std::string stream =
      duplicate_heavy_stream(instances, unique, jobs, machines);

  // Checksums keep the timed work observable and let the table prove the
  // cache changed nothing about the answers.
  std::uint64_t checksum_off = 0;
  std::uint64_t checksum_on = 0;

  batch::BatchOptions plain;
  plain.threads = h.threads();
  const bench::Timing plain_t = h.measure(
      "cache_off", reps,
      [&] {
        std::istringstream in(stream);
        std::ostringstream out;
        checksum_off += batch::run_batch(in, out, plain).makespan_sum;
      },
      static_cast<double>(instances));

  batch::BatchOptions cached = plain;
  cached.cache_capacity = 2 * unique;  // never evicts: pure memoization timing
  const bench::Timing cached_t = h.measure(
      "cache_on", reps,
      [&] {
        std::istringstream in(stream);
        std::ostringstream out;
        checksum_on += batch::run_batch(in, out, cached).makespan_sum;
      },
      static_cast<double>(instances));

  if (checksum_on != checksum_off) {
    std::fprintf(stderr,
                 "bench_cache: checksum mismatch (cache changed results)\n");
    return 1;
  }

  h.section("E13  Duplicate-heavy stream (" + std::to_string(unique) +
            " unique of " + std::to_string(instances) + " records)");
  util::Table t({"path", "instances_per_s", "speedup_vs_cache_off",
                 "makespan_sum"});
  const auto speedup = [](double a, double b) {
    return b > 0.0 ? util::fixed(a / b, 2) : std::string("-");
  };
  t.add("cache_on", util::fixed(cached_t.items_per_second, 1),
        speedup(cached_t.items_per_second, plain_t.items_per_second),
        checksum_on);
  t.add("cache_off", util::fixed(plain_t.items_per_second, 1), "1.00",
        checksum_off);
  h.table(t);

  return h.finish();
}
