// E12 — batch pipeline throughput: how much does the batch service's
// scratch reuse + single process buy over the naive ways to schedule a
// stream of instances?  Three paths over the SAME generated NDJSON stream:
//
//   * batch              — batch::run_batch (the `sharedres_cli batch`
//                          engine path: per-worker engine/Schedule reuse,
//                          ordered emission),
//   * single_shot        — in-process, but a fresh parse + fresh engine +
//                          fresh Schedule per record (what a loop calling
//                          the library naively would do),
//   * per_process_sample — one `sharedres_cli solve` subprocess per
//                          instance (what a shell loop over files does),
//                          measured on a small sample because it is slow by
//                          design; items_per_second makes it comparable.
//
// The headline figure is batch-vs-per-process instances/second — the batch
// pipeline amortizes process startup, instance IO, and allocation, and the
// EXPERIMENTS.md entry pins the observed multiple (the issue gates on
// >= 5x at n ~ 1000 jobs, 10k instances).
//
// Usage: bench_batch_throughput [--instances=N] [--jobs=J] [--machines=M]
//                               [--reps=K] [--cli=PATH] [--spawn-sample=S]
//                               [--csv] [--json-dir=DIR]
//   --cli            path to sharedres_cli; empty (default) skips the
//                    per-process sample so the bench has no binary
//                    dependency in library-only builds
//   --spawn-sample   how many subprocess solves to time (default 25)
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "batch/pipeline.hpp"
#include "batch/stream.hpp"
#include "core/sos_scheduler.hpp"
#include "harness.hpp"
#include "io/text_io.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/sos_generators.hpp"

namespace {

using namespace sharedres;

std::vector<std::string> generate_records(std::size_t instances,
                                          std::size_t jobs, int machines) {
  std::vector<std::string> lines;
  lines.reserve(instances);
  workloads::SosConfig cfg;
  cfg.machines = machines;
  cfg.jobs = jobs;
  cfg.max_size = 5;
  for (std::size_t i = 0; i < instances; ++i) {
    cfg.seed = 1000 + i;
    lines.push_back(batch::format_instance_record(
        workloads::uniform_instance(cfg), "bench-" + std::to_string(i)));
  }
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::Harness h(cli, "bench_batch_throughput",
                   "E12 batch pipeline throughput vs single-shot and "
                   "per-process scheduling");
  const auto instances =
      static_cast<std::size_t>(cli.get_int("instances", 10'000));
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs", 1'000));
  const auto machines = static_cast<int>(cli.get_int("machines", 8));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 3));
  const std::string cli_path = cli.get("cli", "");
  const auto spawn_sample =
      static_cast<std::size_t>(cli.get_int("spawn-sample", 25));

  const std::vector<std::string> lines =
      generate_records(instances, jobs, machines);
  std::string stream;
  for (const std::string& line : lines) {
    stream += line;
    stream += '\n';
  }

  // Accumulates into the table below — keeps the timed work observable.
  core::Time checksum = 0;

  batch::BatchOptions options;
  options.threads = h.threads();
  const bench::Timing batch_t = h.measure(
      "batch", reps,
      [&] {
        std::istringstream in(stream);
        std::ostringstream out;
        const batch::BatchSummary summary = batch::run_batch(in, out, options);
        checksum += static_cast<core::Time>(summary.makespan_sum);
      },
      static_cast<double>(instances));

  const bench::Timing single_t = h.measure(
      "single_shot", reps,
      [&] {
        for (const std::string& line : lines) {
          const batch::InstanceRecord rec = batch::parse_instance_record(line);
          checksum += core::schedule_sos(rec.instance).makespan();
        }
      },
      static_cast<double>(instances));

  bench::Timing spawn_t;
  if (!cli_path.empty() && spawn_sample > 0) {
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "sharedres_bench_batch_throughput";
    fs::create_directories(dir);
    const std::size_t sample = std::min(spawn_sample, instances);
    for (std::size_t i = 0; i < sample; ++i) {
      const batch::InstanceRecord rec = batch::parse_instance_record(lines[i]);
      std::ofstream out(dir / ("inst-" + std::to_string(i) + ".txt"));
      io::write_instance(out, rec.instance);
    }
    spawn_t = h.measure(
        "per_process_sample", 1,
        [&] {
          for (std::size_t i = 0; i < sample; ++i) {
            const std::string cmd =
                cli_path + " solve --instance=" +
                (dir / ("inst-" + std::to_string(i) + ".txt")).string() +
                " >/dev/null 2>&1";
            if (std::system(cmd.c_str()) != 0) {
              std::fprintf(stderr, "bench_batch_throughput: solve failed\n");
              return;
            }
          }
        },
        static_cast<double>(sample));
  }

  h.section("E12  Instances/second by path (higher is better)");
  util::Table t({"path", "instances_per_s", "speedup_vs_single_shot",
                 "speedup_vs_per_process", "checksum"});
  const auto speedup = [](double a, double b) {
    return b > 0.0 ? util::fixed(a / b, 2) : std::string("-");
  };
  t.add("batch", util::fixed(batch_t.items_per_second, 1),
        speedup(batch_t.items_per_second, single_t.items_per_second),
        speedup(batch_t.items_per_second, spawn_t.items_per_second),
        checksum);
  t.add("single_shot", util::fixed(single_t.items_per_second, 1), "1.00",
        speedup(single_t.items_per_second, spawn_t.items_per_second), "");
  if (spawn_t.items_per_second > 0.0) {
    t.add("per_process", util::fixed(spawn_t.items_per_second, 1),
          speedup(spawn_t.items_per_second, single_t.items_per_second), "1.00",
          "");
  }
  h.table(t);

  return h.finish();
}
