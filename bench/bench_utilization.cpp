// E7 — proof mechanics: the per-step dichotomy of Theorem 3.3 ("full
// resource or m−2 jobs at full requirement") and the absorbing borders of
// Lemma 3.8, instrumented over whole runs. The table reports where T_L and
// T_R fall relative to the makespan, the heavy/light case mix, and mean
// resource utilization.
//
// Usage: bench_utilization [--jobs=N] [--seeds=K] [--csv] [--json-dir=DIR]
#include "core/sos_scheduler.hpp"
#include "harness.hpp"
#include "sim/metrics.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/sos_generators.hpp"

int main(int argc, char** argv) {
  using namespace sharedres;
  const util::Cli cli(argc, argv);
  bench::Harness h(cli, "bench_utilization",
                   "E7 proof mechanics: case mix, utilization, T_L/T_R "
                   "(Theorem 3.3, Lemma 3.8)");
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs", 400));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 5));

  util::Table table({"family", "m", "heavy_frac", "util_mean", "tL/makespan",
                     "tR/makespan", "dichotomy_viol", "border_viol"});
  for (const std::string& family : workloads::instance_families()) {
    for (const int m : {4, 8, 16, 32}) {
      util::Summary heavy_frac, util_mean, tl_frac, tr_frac;
      core::Time dichotomy = 0;
      core::Time borders = 0;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        workloads::SosConfig cfg;
        cfg.machines = m;
        cfg.capacity = 1'000'000;
        cfg.jobs = jobs;
        cfg.max_size = 4;
        cfg.seed = seed;
        const core::Instance inst = workloads::make_instance(family, cfg);
        sim::MetricsCollector metrics(
            static_cast<std::size_t>(m - 1), inst.capacity());
        const core::Schedule s =
            core::schedule_sos(inst, {.observer = &metrics});
        const auto span = static_cast<double>(s.makespan());
        heavy_frac.add(static_cast<double>(metrics.heavy_steps()) / span);
        util_mean.add(metrics.mean_utilization());
        tl_frac.add(metrics.t_left() == 0
                        ? 1.0
                        : static_cast<double>(metrics.t_left()) / span);
        tr_frac.add(metrics.t_right() == 0
                        ? 1.0
                        : static_cast<double>(metrics.t_right()) / span);
        dichotomy += metrics.dichotomy_violations();
        borders += metrics.border_violations();
      }
      table.add(family, m, util::fixed(heavy_frac.mean(), 3),
                util::fixed(util_mean.mean(), 3), util::fixed(tl_frac.mean(), 3),
                util::fixed(tr_frac.mean(), 3), dichotomy, borders);
    }
  }

  h.section(
      "E7  Proof mechanics: case mix, utilization, T_L/T_R (Theorem 3.3, "
      "Lemma 3.8)");
  h.table(table);
  return h.finish();
}
