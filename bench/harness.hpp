// Shared bench-binary harness: consistent CLI flags, table/CSV printing, and
// machine-readable BENCH_<name>.json artifacts.
//
// Every bench binary builds one Harness, streams its tables (and optionally
// explicit timings) through it, and returns finish() from main. The harness
//   * owns the common flags: --csv (CSV instead of aligned tables),
//     --threads=N (worker count for parallel sweeps, overriding
//     SHAREDRES_THREADS / hardware concurrency), --json-dir=DIR (artifact
//     output directory, default "."),
//   * prints the human-readable report exactly as the pre-harness binaries
//     did (titles, aligned tables, CSV mode), and
//   * writes BENCH_<name>.json containing the same tables plus all recorded
//     timings — the input of scripts/check_bench_regression.py and of the
//     schema tests in tests/test_bench_json.cpp.
//
// JSON schema (schema_version 1):
//   {
//     "schema_version": 1,
//     "name":       "<binary name>",
//     "experiment": "<E-number + one-line description>",
//     "threads":    <worker count used for parallel sweeps>,
//     "tables":  [{"title": str, "columns": [str], "rows": [[str]]}],
//     "timings": [{"label": str, "reps": int,
//                  "seconds_min": x, "seconds_median": x,
//                  "seconds_mean": x, "seconds_max": x,
//                  "items_per_second": x}],  // 0 when not meaningful
//     "metrics":  <obs::to_json(Registry::global())>  // see obs/json_export
//   }
// Timings always include a final "total" entry (whole-binary wall time), so
// the artifact is usable for coarse regression tracking even for benches
// that record no explicit timings. All timings come from the monotonic
// clock and satisfy min <= median <= max and min <= mean <= max.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace sharedres::bench {

/// One timed workload, summarized over its repetitions.
struct Timing {
  std::string label;
  std::size_t reps = 1;
  double seconds_min = 0.0;
  double seconds_median = 0.0;
  double seconds_mean = 0.0;
  double seconds_max = 0.0;
  double items_per_second = 0.0;  ///< throughput; 0 when not meaningful

  /// Summarize a Measurement; `items` is the per-rep work count (e.g. jobs
  /// scheduled) used for the throughput figure, 0 to skip it.
  static Timing from(std::string label, const util::Measurement& m,
                     double items = 0.0);
};

class Harness {
 public:
  /// `name` is the binary name (used for the artifact file name),
  /// `experiment` the one-line E-number description.
  Harness(const util::Cli& cli, std::string name, std::string experiment);

  /// Worker count for parallel sweeps: --threads if positive, else
  /// util::default_threads() (which honors SHAREDRES_THREADS).
  [[nodiscard]] std::size_t threads() const { return threads_; }
  [[nodiscard]] bool csv() const { return csv_; }

  /// Print a section title; subsequent tables are recorded under it.
  void section(const std::string& title);

  /// Print the table (aligned or CSV per --csv) and record it for the JSON
  /// artifact under the current section title.
  void table(const util::Table& t);

  /// Record an explicit timing for the JSON artifact and print a one-line
  /// summary of it.
  void record(Timing t);

  /// Run fn() `reps` times, record the summary under `label`, and return it.
  /// `items` is per-rep work for the throughput column (0 = none).
  template <class Fn>
  Timing measure(const std::string& label, std::size_t reps, Fn&& fn,
                 double items = 0.0) {
    Timing t = Timing::from(label, util::measure_seconds(reps, fn), items);
    record(t);
    return t;
  }

  /// Append the "total" timing, write BENCH_<name>.json, return 0 (the exit
  /// status for main).
  int finish();

 private:
  struct RecordedTable {
    std::string title;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };

  std::string name_;
  std::string experiment_;
  std::string json_dir_;
  std::size_t threads_;
  bool csv_;
  bool any_output_ = false;
  std::string current_title_;
  util::Timer total_;
  std::vector<RecordedTable> tables_;
  std::vector<Timing> timings_;
};

}  // namespace sharedres::bench
